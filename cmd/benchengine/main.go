// Command benchengine measures the CONGEST engine's hot path on the
// canonical 2048-vertex workload (the Luby MIS run of
// BenchmarkEngineWorkers: ErdosRenyi(2048, 24/2048, 9, seed 1), engine
// seed 3, workers=1) and writes BENCH_engine.json recording ns/round,
// allocations and messages next to the frozen pre-refactor baseline.
// The checked-in JSON is the start of the repo's performance
// trajectory; rerun after engine changes (cmd/benchdiff gates CI on
// regressions against the committed file):
//
//	go run ./cmd/benchengine -out BENCH_engine.json
//
// With -pipeline1m the canonical run additionally measures the full
// measured-mode SLT and spanner pipelines at n=10⁶ (knn scenario,
// seed 1, workers=1). One op takes minutes, so these are single-run
// datapoints: wall clock plus runtime.ReadMemStats deltas instead of
// testing.Benchmark. The deterministic columns (rounds, messages) are
// exact; ns is gated only within a coarse tolerance. -pipeline1m-n
// shrinks the size for CI smokes (the workload string records the
// actual n, and cmd/benchdiff refuses to compare mismatched workloads):
//
//	go run ./cmd/benchengine -pipeline1m -out BENCH_engine.json
//	go run ./cmd/benchengine -pipeline1m -pipeline1m-n 100000 -out /tmp/smoke.json
//
// With -scenario the same measurement runs on any registered scenario
// spec instead of the canonical workload — useful for profiling the
// engine on other topology families. Scenario runs are not comparable
// to the frozen baseline, so the report then carries only the "after"
// numbers:
//
//	go run ./cmd/benchengine -scenario ba:m=4 -n 8192 -out /tmp/ba.json
//
// With -program slt-measured or -program spanner-measured the
// measurement runs the corresponding full measured-mode engine pipeline
// (§4 SLT / §5 light spanner on one congest.Pipeline) instead of the
// elementary MIS program, so the report tracks that pipeline's round
// cost and allocation profile:
//
//	go run ./cmd/benchengine -program slt-measured -scenario er -n 1024 -out /tmp/slt.json
//
// Profiling hooks (-cpuprofile, -memprofile, -trace) wrap the
// measurement work, so a single invocation yields both the report and
// the profile of exactly the measured path:
//
//	go run ./cmd/benchengine -pipeline1m -cpuprofile /tmp/engine.pprof -out /tmp/e.json
//	go tool pprof -top /tmp/engine.pprof
//
// For per-round micro-costs (dense vs sparse traffic) see
// BenchmarkSteadyStateRound in internal/congest; for the multi-core
// profile run BenchmarkEngineWorkers with -benchmem.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lightnet"
	"lightnet/internal/benchfmt"
	"lightnet/internal/congest"
	"lightnet/internal/experiments"
	"lightnet/internal/graph"
	"lightnet/internal/profiling"
)

// baseline is the pre-refactor engine (commit 986341d: per-message heap
// allocation, full edge/vertex scans per round, map-keyed per-neighbor
// program state), measured on the same workload and host class with
// go test -bench BenchmarkEngineWorkers/workers=1 -benchmem.
var baseline = benchfmt.Measurement{
	Commit:      "986341d",
	NsPerOp:     55582765,
	RoundsPerOp: 13,
	NsPerRound:  55582765.0 / 13,
	AllocsPerOp: 254142,
	BytesPerOp:  27322368,
	Messages:    101225,
}

func workloadGraph() *graph.Graph {
	return graph.ErdosRenyi(2048, 24.0/2048, 9, 1)
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output path")
	scenario := flag.String("scenario", "", "scenario spec to benchmark instead of the canonical workload (not baseline-comparable)")
	program := flag.String("program", "mis", "workload program: mis (canonical) | slt-measured | spanner-measured (full measured-mode engine pipelines; not baseline-comparable)")
	n := flag.Int("n", 2048, "graph size for -scenario runs")
	seed := flag.Int64("seed", 1, "graph seed for -scenario runs")
	pipeline1m := flag.Bool("pipeline1m", false, "also measure the n=10^6 measured pipelines (single-run; canonical workload only)")
	pipeline1mN := flag.Int("pipeline1m-n", 1_000_000, "graph size for the -pipeline1m datapoints (shrink for CI smokes)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the measurement) to this path")
	tracePath := flag.String("trace", "", "write a runtime execution trace of the measurement to this path")
	flag.Parse()
	stop, err := profiling.Start(*cpuprofile, *memprofile, *tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	err = run(*out, *scenario, *program, *n, *seed, *pipeline1m, *pipeline1mN)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
}

func run(out, scenario, program string, n int, seed int64, pipeline1m bool, pipeline1mN int) error {
	g := workloadGraph()
	workload := "Luby MIS on ErdosRenyi(n=2048, p=24/n, maxW=9, seed=1), " +
		"engine seed 3, workers=1 (the BenchmarkEngineWorkers workload)"
	comparable := true
	if scenario != "" {
		var err error
		if g, err = experiments.BuildWorkload(scenario, n, seed); err != nil {
			return err
		}
		workload = fmt.Sprintf("Luby MIS on scenario %q (n=%d, seed=%d), engine seed 3, workers=1", scenario, n, seed)
		comparable = false
	}
	switch program {
	case "slt-measured", "spanner-measured":
		return runPipelineOnly(out, program, g, workload)
	case "mis":
	default:
		return fmt.Errorf("unknown -program %q (mis|slt-measured|spanner-measured)", program)
	}
	// One reference run for the round/message counts (deterministic:
	// fixed seeds, worker count does not change results).
	_, stats, err := congest.RunLubyMISWorkers(g, 3, 1)
	if err != nil {
		return err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := congest.RunLubyMISWorkers(g, 3, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	after := benchfmt.Measurement{
		Commit:      "HEAD",
		Workload:    workload,
		NsPerOp:     res.NsPerOp(),
		RoundsPerOp: stats.Rounds,
		NsPerRound:  float64(res.NsPerOp()) / float64(stats.Rounds),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Messages:    stats.Messages,
	}
	rep := benchfmt.EngineReport{Workload: workload, After: after}
	if comparable {
		rep.Before = &baseline
		rep.SpeedupNsPerRound = baseline.NsPerRound / after.NsPerRound
		if rep.SLTPipeline, err = measurePipeline("slt-measured", g); err != nil {
			return err
		}
		if rep.SpannerPipeline, err = measurePipeline("spanner-measured", g); err != nil {
			return err
		}
		if pipeline1m {
			big, err := experiments.BuildWorkload("knn", pipeline1mN, 1)
			if err != nil {
				return err
			}
			if rep.SLTPipeline1M, err = measurePipelineOnce("slt-measured", big, pipeline1mN); err != nil {
				return err
			}
			if rep.SpannerPipeline1M, err = measurePipelineOnce("spanner-measured", big, pipeline1mN); err != nil {
				return err
			}
		}
	}
	if err := benchfmt.WriteFile(out, rep); err != nil {
		return err
	}
	if comparable {
		fmt.Printf("workload: %s\nns/round: %.0f -> %.0f (%.2fx)\nallocs/op: %d -> %d\n",
			rep.Workload, baseline.NsPerRound, after.NsPerRound, rep.SpeedupNsPerRound,
			baseline.AllocsPerOp, after.AllocsPerOp)
		for _, p := range []*benchfmt.Measurement{rep.SLTPipeline1M, rep.SpannerPipeline1M} {
			if p != nil {
				fmt.Printf("%s: %.1fs rounds=%d messages=%d allocs=%d\n",
					p.Workload, float64(p.NsPerOp)/1e9, p.RoundsPerOp, p.Messages, p.AllocsPerOp)
			}
		}
		fmt.Printf("wrote %s\n", out)
	} else {
		fmt.Printf("workload: %s\nns/round: %.0f allocs/op: %d messages: %d\nwrote %s\n",
			rep.Workload, after.NsPerRound, after.AllocsPerOp, after.Messages, out)
	}
	return nil
}

// buildPipeline runs one full measured-mode pipeline build on g at the
// headline grid parameters (SLT: eps=0.5; spanner: k=2, eps=0.25) and
// returns its measured cost.
func buildPipeline(program string, g *graph.Graph) (lightnet.Cost, error) {
	switch program {
	case "spanner-measured":
		res, err := lightnet.BuildLightSpanner(g, 2, 0.25, lightnet.WithSeed(1), lightnet.WithMeasured(), lightnet.WithWorkers(1))
		if err != nil {
			return lightnet.Cost{}, err
		}
		return res.Cost, nil
	default:
		res, err := lightnet.BuildSLT(g, 0, 0.5, lightnet.WithSeed(1), lightnet.WithMeasured(), lightnet.WithWorkers(1))
		if err != nil {
			return lightnet.Cost{}, err
		}
		return res.Cost, nil
	}
}

// measurePipeline benchmarks one full measured-mode pipeline (all
// engine stages on one pipeline instance, workers=1) on g: per-op wall
// time, allocations and measured round/message totals. The SLT runs at
// eps=0.5, the spanner at k=2, eps=0.25 — the headline grid parameters.
func measurePipeline(program string, g *graph.Graph) (*benchfmt.Measurement, error) {
	ref, err := buildPipeline(program, g)
	if err != nil {
		return nil, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := buildPipeline(program, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	rounds := int(ref.Rounds)
	return &benchfmt.Measurement{
		Commit:      "HEAD",
		Workload:    fmt.Sprintf("%s canonical-er n=%d seed=1 workers=1", program, g.N()),
		NsPerOp:     res.NsPerOp(),
		RoundsPerOp: rounds,
		NsPerRound:  float64(res.NsPerOp()) / float64(rounds),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Messages:    ref.Messages,
	}, nil
}

// measurePipelineOnce is the single-run variant for graphs where one op
// takes minutes: wall clock for ns, runtime.ReadMemStats deltas for the
// allocation columns. The deterministic columns (rounds, messages) are
// exact regardless; ns and bytes carry single-run noise, which is why
// the benchdiff gate holds 1m entries only to a coarse ns tolerance.
func measurePipelineOnce(program string, g *graph.Graph, n int) (*benchfmt.Measurement, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	cost, err := buildPipeline(program, g)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return nil, err
	}
	rounds := int(cost.Rounds)
	return &benchfmt.Measurement{
		Commit:      "HEAD",
		Workload:    fmt.Sprintf("%s knn n=%d seed=1 workers=1 (single run)", program, n),
		NsPerOp:     wall.Nanoseconds(),
		RoundsPerOp: rounds,
		NsPerRound:  float64(wall.Nanoseconds()) / float64(rounds),
		AllocsPerOp: int64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  int64(m1.TotalAlloc - m0.TotalAlloc),
		Messages:    cost.Messages,
	}, nil
}

// runPipelineOnly writes a report measuring only the requested pipeline
// (the -program slt-measured / spanner-measured modes). Not comparable
// to the frozen Luby MIS baseline, so only the After numbers are
// recorded.
func runPipelineOnly(out, program string, g *graph.Graph, base string) error {
	m, err := measurePipeline(program, g)
	if err != nil {
		return err
	}
	rep := benchfmt.EngineReport{
		Workload: fmt.Sprintf("measured-mode %s pipeline (seed 1, workers=1) instead of %s", program, base),
		After:    *m,
	}
	if err := benchfmt.WriteFile(out, rep); err != nil {
		return err
	}
	fmt.Printf("workload: %s\nns/round: %.0f allocs/op: %d rounds: %d messages: %d\nwrote %s\n",
		rep.Workload, rep.After.NsPerRound, rep.After.AllocsPerOp, rep.After.RoundsPerOp, rep.After.Messages, out)
	return nil
}

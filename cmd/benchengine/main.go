// Command benchengine measures the CONGEST engine's hot path on the
// canonical 2048-vertex workload (the Luby MIS run of
// BenchmarkEngineWorkers: ErdosRenyi(2048, 24/2048, 9, seed 1), engine
// seed 3, workers=1) and writes BENCH_engine.json recording ns/round,
// allocations and messages next to the frozen pre-refactor baseline.
// The checked-in JSON is the start of the repo's performance
// trajectory; rerun after engine changes (cmd/benchdiff gates CI on
// regressions against the committed file):
//
//	go run ./cmd/benchengine -out BENCH_engine.json
//
// With -scenario the same measurement runs on any registered scenario
// spec instead of the canonical workload — useful for profiling the
// engine on other topology families. Scenario runs are not comparable
// to the frozen baseline, so the report then carries only the "after"
// numbers:
//
//	go run ./cmd/benchengine -scenario ba:m=4 -n 8192 -out /tmp/ba.json
//
// With -program slt-measured or -program spanner-measured the
// measurement runs the corresponding full measured-mode engine pipeline
// (§4 SLT / §5 light spanner on one congest.Pipeline) instead of the
// elementary MIS program, so the report tracks that pipeline's round
// cost and allocation profile:
//
//	go run ./cmd/benchengine -program slt-measured -scenario er -n 1024 -out /tmp/slt.json
//
// For per-round micro-costs (dense vs sparse traffic) see
// BenchmarkSteadyStateRound in internal/congest; for the multi-core
// profile run BenchmarkEngineWorkers with -benchmem.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"lightnet"
	"lightnet/internal/benchfmt"
	"lightnet/internal/congest"
	"lightnet/internal/experiments"
	"lightnet/internal/graph"
)

// baseline is the pre-refactor engine (commit 986341d: per-message heap
// allocation, full edge/vertex scans per round, map-keyed per-neighbor
// program state), measured on the same workload and host class with
// go test -bench BenchmarkEngineWorkers/workers=1 -benchmem.
var baseline = benchfmt.Measurement{
	Commit:      "986341d",
	NsPerOp:     55582765,
	RoundsPerOp: 13,
	NsPerRound:  55582765.0 / 13,
	AllocsPerOp: 254142,
	BytesPerOp:  27322368,
	Messages:    101225,
}

func workloadGraph() *graph.Graph {
	return graph.ErdosRenyi(2048, 24.0/2048, 9, 1)
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output path")
	scenario := flag.String("scenario", "", "scenario spec to benchmark instead of the canonical workload (not baseline-comparable)")
	program := flag.String("program", "mis", "workload program: mis (canonical) | slt-measured | spanner-measured (full measured-mode engine pipelines; not baseline-comparable)")
	n := flag.Int("n", 2048, "graph size for -scenario runs")
	seed := flag.Int64("seed", 1, "graph seed for -scenario runs")
	flag.Parse()
	if err := run(*out, *scenario, *program, *n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
}

func run(out, scenario, program string, n int, seed int64) error {
	g := workloadGraph()
	workload := "Luby MIS on ErdosRenyi(n=2048, p=24/n, maxW=9, seed=1), " +
		"engine seed 3, workers=1 (the BenchmarkEngineWorkers workload)"
	comparable := true
	if scenario != "" {
		var err error
		if g, err = experiments.BuildWorkload(scenario, n, seed); err != nil {
			return err
		}
		workload = fmt.Sprintf("Luby MIS on scenario %q (n=%d, seed=%d), engine seed 3, workers=1", scenario, n, seed)
		comparable = false
	}
	switch program {
	case "slt-measured", "spanner-measured":
		return runPipelineOnly(out, program, g, workload)
	case "mis":
	default:
		return fmt.Errorf("unknown -program %q (mis|slt-measured|spanner-measured)", program)
	}
	// One reference run for the round/message counts (deterministic:
	// fixed seeds, worker count does not change results).
	_, stats, err := congest.RunLubyMISWorkers(g, 3, 1)
	if err != nil {
		return err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := congest.RunLubyMISWorkers(g, 3, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	after := benchfmt.Measurement{
		Commit:      "HEAD",
		NsPerOp:     res.NsPerOp(),
		RoundsPerOp: stats.Rounds,
		NsPerRound:  float64(res.NsPerOp()) / float64(stats.Rounds),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Messages:    stats.Messages,
	}
	rep := benchfmt.EngineReport{Workload: workload, After: after}
	if comparable {
		rep.Before = &baseline
		rep.SpeedupNsPerRound = baseline.NsPerRound / after.NsPerRound
		if rep.SLTPipeline, err = measurePipeline("slt-measured", g); err != nil {
			return err
		}
		if rep.SpannerPipeline, err = measurePipeline("spanner-measured", g); err != nil {
			return err
		}
	}
	if err := benchfmt.WriteFile(out, rep); err != nil {
		return err
	}
	if comparable {
		fmt.Printf("workload: %s\nns/round: %.0f -> %.0f (%.2fx)\nallocs/op: %d -> %d\nwrote %s\n",
			rep.Workload, baseline.NsPerRound, after.NsPerRound, rep.SpeedupNsPerRound,
			baseline.AllocsPerOp, after.AllocsPerOp, out)
	} else {
		fmt.Printf("workload: %s\nns/round: %.0f allocs/op: %d messages: %d\nwrote %s\n",
			rep.Workload, after.NsPerRound, after.AllocsPerOp, after.Messages, out)
	}
	return nil
}

// measurePipeline benchmarks one full measured-mode pipeline (all
// engine stages on one pipeline instance, workers=1) on g: per-op wall
// time, allocations and measured round/message totals. The SLT runs at
// eps=0.5, the spanner at k=2, eps=0.25 — the headline grid parameters.
func measurePipeline(program string, g *graph.Graph) (*benchfmt.Measurement, error) {
	build := func() (lightnet.Cost, error) {
		switch program {
		case "spanner-measured":
			res, err := lightnet.BuildLightSpanner(g, 2, 0.25, lightnet.WithSeed(1), lightnet.WithMeasured(), lightnet.WithWorkers(1))
			if err != nil {
				return lightnet.Cost{}, err
			}
			return res.Cost, nil
		default:
			res, err := lightnet.BuildSLT(g, 0, 0.5, lightnet.WithSeed(1), lightnet.WithMeasured(), lightnet.WithWorkers(1))
			if err != nil {
				return lightnet.Cost{}, err
			}
			return res.Cost, nil
		}
	}
	ref, err := build()
	if err != nil {
		return nil, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := build(); err != nil {
				b.Fatal(err)
			}
		}
	})
	rounds := int(ref.Rounds)
	return &benchfmt.Measurement{
		Commit:      "HEAD",
		NsPerOp:     res.NsPerOp(),
		RoundsPerOp: rounds,
		NsPerRound:  float64(res.NsPerOp()) / float64(rounds),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Messages:    ref.Messages,
	}, nil
}

// runPipelineOnly writes a report measuring only the requested pipeline
// (the -program slt-measured / spanner-measured modes). Not comparable
// to the frozen Luby MIS baseline, so only the After numbers are
// recorded.
func runPipelineOnly(out, program string, g *graph.Graph, base string) error {
	m, err := measurePipeline(program, g)
	if err != nil {
		return err
	}
	rep := benchfmt.EngineReport{
		Workload: fmt.Sprintf("measured-mode %s pipeline (seed 1, workers=1) instead of %s", program, base),
		After:    *m,
	}
	if err := benchfmt.WriteFile(out, rep); err != nil {
		return err
	}
	fmt.Printf("workload: %s\nns/round: %.0f allocs/op: %d rounds: %d messages: %d\nwrote %s\n",
		rep.Workload, rep.After.NsPerRound, rep.After.AllocsPerOp, rep.After.RoundsPerOp, rep.After.Messages, out)
	return nil
}

// Command benchdiff is the CI bench-regression gate: it compares a
// fresh benchmark report against the committed baseline and exits
// non-zero when the fresh numbers regress.
//
//	go run ./cmd/benchengine -out /tmp/engine.json
//	go run ./cmd/benchdiff -kind engine -baseline BENCH_engine.json -current /tmp/engine.json
//
//	go run ./cmd/benchgen -million=false -out /tmp/gen.json
//	go run ./cmd/benchdiff -kind generators -baseline BENCH_generators.json -current /tmp/gen.json
//
//	go run ./cmd/benchquality -out /tmp/quality.json
//	go run ./cmd/benchdiff -kind quality -baseline BENCH_quality.json -current /tmp/quality.json
//
//	lightnet serve -addr 127.0.0.1:0 -addrfile /tmp/addr &
//	lightnet loadgen -addr "http://$(cat /tmp/addr)" -out /tmp/serve.json
//	go run ./cmd/benchdiff -kind serve -baseline BENCH_serve.json -current /tmp/serve.json
//
// What is gated, per measurement present in both reports:
//
//   - deterministic fields (rounds/op, messages, edge counts) must match
//     exactly — the workloads are seed-fixed, so any drift means the
//     algorithm changed and the baseline must be regenerated in the same
//     change;
//   - allocs/op must not grow by more than -max-alloc-increase (default
//     1%): allocation counts of the deterministic single-worker runs are
//     machine-independent, so this catches a hot path starting to
//     allocate — the steady-state rounds themselves are pinned to zero
//     allocations by TestSteadyStateAllocs in internal/congest;
//   - ns/round (engine) and the brute-vs-grid speedup (generators) must
//     not regress by more than -max-ns-regress (default 25%). Wall-clock
//     ratios carry machine variance; CI passes a looser bound than the
//     default when the runner class differs from the machine that wrote
//     the baseline.
//
// The quality kind has no wall-clock at all, so its gate is strict: on
// every fresh row the measured stretch (max and p99) must sit at or
// under the paper bound 2k−1 unconditionally — this check does not
// consult the baseline, so a bound violation can never be "regenerated
// away" — the accounted and measured rows of each scenario must be
// bit-identical (the pipeline equivalence contract), deterministic
// fields must match the baseline exactly (near-exactly for floats, as
// cross-platform insurance), and lightness plus its ratio vs the greedy
// oracle must stay within -max-ratio-increase (default 5%) of the
// committed envelope.
//
// Updating the baseline: when a change intentionally alters the gated
// numbers (an engine or generator change), regenerate the committed
// files on a quiet machine and commit them with the change —
//
//	go run ./cmd/benchengine -out BENCH_engine.json
//	go run ./cmd/benchgen -out BENCH_generators.json
//
// — so the gate's next comparison starts from the new trajectory. The
// docs/ARCHITECTURE.md "Performance" section describes the workflow.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"lightnet/internal/benchfmt"
)

func main() {
	kind := flag.String("kind", "engine", "report schema: engine | generators | quality | serve")
	basePath := flag.String("baseline", "", "committed baseline JSON (e.g. BENCH_engine.json)")
	curPath := flag.String("current", "", "freshly generated JSON to gate")
	maxNs := flag.Float64("max-ns-regress", 0.25, "tolerated fractional ns/round (or speedup) regression")
	maxAlloc := flag.Float64("max-alloc-increase", 0.01, "tolerated fractional allocs/op increase")
	maxRatio := flag.Float64("max-ratio-increase", 0.05, "tolerated fractional lightness (and ratio-vs-greedy) increase for -kind quality")
	maxNs1m := flag.Float64("max-ns-regress-1m", 1.0, "tolerated fractional ns/round regression for the single-run n=10^6 pipeline entries (-kind engine)")
	require1m := flag.Bool("require-1m", false, "fail when the fresh engine report lacks the n=10^6 pipeline entries the baseline carries (nightly; PR CI skips them)")
	flag.Parse()
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	violations, err := diff(*kind, *basePath, *curPath, *maxNs, *maxAlloc, *maxRatio, *maxNs1m, *require1m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s:\n", len(violations), *basePath)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		fmt.Fprintln(os.Stderr, "if intentional, regenerate the baseline (see cmd/benchdiff docs)")
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s within tolerance of %s (ns %.0f%%, allocs %.0f%%)\n",
		*curPath, *basePath, *maxNs*100, *maxAlloc*100)
}

func diff(kind, basePath, curPath string, maxNs, maxAlloc, maxRatio, maxNs1m float64, require1m bool) ([]string, error) {
	switch kind {
	case "engine":
		base, err := benchfmt.LoadEngine(basePath)
		if err != nil {
			return nil, err
		}
		cur, err := benchfmt.LoadEngine(curPath)
		if err != nil {
			return nil, err
		}
		return diffEngine(base, cur, maxNs, maxAlloc, maxNs1m, require1m), nil
	case "generators":
		base, err := benchfmt.LoadGenerators(basePath)
		if err != nil {
			return nil, err
		}
		cur, err := benchfmt.LoadGenerators(curPath)
		if err != nil {
			return nil, err
		}
		return diffGenerators(base, cur, maxNs), nil
	case "quality":
		base, err := benchfmt.LoadQuality(basePath)
		if err != nil {
			return nil, err
		}
		cur, err := benchfmt.LoadQuality(curPath)
		if err != nil {
			return nil, err
		}
		return diffQuality(base, cur, maxRatio), nil
	case "serve":
		base, err := benchfmt.LoadServe(basePath)
		if err != nil {
			return nil, err
		}
		cur, err := benchfmt.LoadServe(curPath)
		if err != nil {
			return nil, err
		}
		return diffServe(base, cur, maxNs), nil
	default:
		return nil, fmt.Errorf("unknown -kind %q (engine|generators|quality|serve)", kind)
	}
}

// diffEngine gates every measurement present in the baseline: the
// canonical after numbers plus the measured-mode pipelines. The n=10⁶
// single-run entries (slt_pipeline_1m / spanner_pipeline_1m) are gated
// with their own coarse ns tolerance, and — because PR CI cannot afford
// the runs — their absence from the fresh report is an error only under
// -require-1m (the nightly mode).
func diffEngine(base, cur *benchfmt.EngineReport, maxNs, maxAlloc, maxNs1m float64, require1m bool) []string {
	if cur.Workload != base.Workload {
		return []string{fmt.Sprintf("workload mismatch: baseline %q vs fresh %q (run benchengine in the baseline's mode)",
			base.Workload, cur.Workload)}
	}
	var out []string
	out = append(out, diffMeasurement("after", &base.After, &cur.After, maxNs, maxAlloc, false)...)
	out = append(out, diffMeasurement("slt_pipeline", base.SLTPipeline, cur.SLTPipeline, maxNs, maxAlloc, false)...)
	out = append(out, diffMeasurement("spanner_pipeline", base.SpannerPipeline, cur.SpannerPipeline, maxNs, maxAlloc, false)...)
	out = append(out, diffMeasurement("slt_pipeline_1m", base.SLTPipeline1M, cur.SLTPipeline1M, maxNs1m, maxAlloc, !require1m)...)
	out = append(out, diffMeasurement("spanner_pipeline_1m", base.SpannerPipeline1M, cur.SpannerPipeline1M, maxNs1m, maxAlloc, !require1m)...)
	return out
}

// diffMeasurement gates one engine measurement. optional marks entries
// a fresh report may legitimately omit (the n=10⁶ runs on PR CI).
// Violations lead with the entry name and its recorded workload, so a
// failing gate identifies exactly which pipeline input regressed.
func diffMeasurement(name string, base, cur *benchfmt.Measurement, maxNs, maxAlloc float64, optional bool) []string {
	if base == nil {
		return nil // not gated yet: commit a regenerated baseline to start
	}
	if cur == nil {
		if optional {
			return nil
		}
		return []string{fmt.Sprintf("%s%s: measurement missing from the fresh report", name, workloadTag(base))}
	}
	if base.Workload != "" && cur.Workload != "" && base.Workload != cur.Workload {
		if optional {
			// A shrunken CI smoke (e.g. -pipeline1m-n 100000) measures a
			// different input; skip rather than compare apples to oranges.
			// The nightly run passes -require-1m and still gets the error.
			return nil
		}
		return []string{fmt.Sprintf("%s: workload mismatch: baseline %q vs fresh %q (not comparable; rerun benchengine with the baseline's parameters)",
			name, base.Workload, cur.Workload)}
	}
	var out []string
	if cur.RoundsPerOp != base.RoundsPerOp {
		out = append(out, fmt.Sprintf("%s%s: rounds/op changed %d -> %d (deterministic workload; algorithm drift)",
			name, workloadTag(base), base.RoundsPerOp, cur.RoundsPerOp))
	}
	if cur.Messages != base.Messages {
		out = append(out, fmt.Sprintf("%s%s: messages changed %d -> %d (deterministic workload; algorithm drift)",
			name, workloadTag(base), base.Messages, cur.Messages))
	}
	if limit := float64(base.AllocsPerOp) * (1 + maxAlloc); float64(cur.AllocsPerOp) > limit {
		out = append(out, fmt.Sprintf("%s%s: allocs/op %d -> %d exceeds +%.0f%% tolerance",
			name, workloadTag(base), base.AllocsPerOp, cur.AllocsPerOp, maxAlloc*100))
	}
	if limit := base.NsPerRound * (1 + maxNs); cur.NsPerRound > limit {
		out = append(out, fmt.Sprintf("%s%s: ns/round %.0f -> %.0f exceeds +%.0f%% tolerance",
			name, workloadTag(base), base.NsPerRound, cur.NsPerRound, maxNs*100))
	}
	return out
}

// workloadTag renders the per-measurement workload for violation
// messages (empty for pre-metadata baselines).
func workloadTag(m *benchfmt.Measurement) string {
	if m.Workload == "" {
		return ""
	}
	return fmt.Sprintf(" [%s]", m.Workload)
}

// diffGenerators gates the brute-vs-grid comparisons: edge counts are
// deterministic and must match; the speedup ratio (machine-neutral: both
// builders run on the same host in the same process) must not shrink
// beyond tolerance. The million-point datapoint is compared only when
// both reports carry it (CI skips it with -million=false).
func diffGenerators(base, cur *benchfmt.GeneratorsReport, maxRegress float64) []string {
	var out []string
	if base.N != cur.N || base.Dim != cur.Dim {
		out = append(out, fmt.Sprintf("workload mismatch: baseline n=%d dim=%d vs fresh n=%d dim=%d (run benchgen with the baseline's parameters)",
			base.N, base.Dim, cur.N, cur.Dim))
		return out
	}
	curBy := make(map[string]benchfmt.GeneratorComparison, len(cur.Comparisons))
	for _, c := range cur.Comparisons {
		curBy[c.Regime] = c
	}
	for _, b := range base.Comparisons {
		c, ok := curBy[b.Regime]
		if !ok {
			out = append(out, fmt.Sprintf("%s: regime missing from the fresh report", b.Regime))
			continue
		}
		if c.Edges != b.Edges {
			out = append(out, fmt.Sprintf("%s: edges changed %d -> %d (deterministic build; generator drift)",
				b.Regime, b.Edges, c.Edges))
		}
		if floor := b.Speedup / (1 + maxRegress); c.Speedup < floor {
			out = append(out, fmt.Sprintf("%s: speedup %.1fx -> %.1fx below -%.0f%% tolerance",
				b.Regime, b.Speedup, c.Speedup, maxRegress*100))
		}
	}
	if base.MillionPoint != nil && cur.MillionPoint != nil &&
		cur.MillionPoint.Edges != base.MillionPoint.Edges {
		out = append(out, fmt.Sprintf("million_point: edges changed %d -> %d (deterministic build; generator drift)",
			base.MillionPoint.Edges, cur.MillionPoint.Edges))
	}
	return out
}

// diffServe gates the query-service report. Like the quality gate it
// leads with an absolute check the baseline cannot mask: the fresh run
// must have zero error responses. Deterministic fields — the served
// graph and object (n, m, edges, network digest) and the ordered
// response digest of the seeded query stream — must match the baseline
// exactly: the stream is a counter hash and responses carry no
// timestamps, so any drift means the served answers changed. Throughput
// and tail latency are wall-clock and gated only within maxNs: QPS may
// not fall below base/(1+maxNs), p99 may not exceed base·(1+maxNs).
func diffServe(base, cur *benchfmt.ServeReport, maxNs float64) []string {
	var out []string
	if cur.Errors != 0 {
		out = append(out, fmt.Sprintf("serve: %d error response(s) in the fresh run (must be 0; service broken)", cur.Errors))
	}
	if base.Workload != cur.Workload || base.Object != cur.Object ||
		base.N != cur.N || base.K != cur.K || base.Eps != cur.Eps ||
		base.Seed != cur.Seed || base.Clients != cur.Clients || base.Queries != cur.Queries {
		out = append(out, fmt.Sprintf("workload mismatch: baseline %s/%s n=%d k=%d eps=%g seed=%d clients=%d queries=%d vs fresh %s/%s n=%d k=%d eps=%g seed=%d clients=%d queries=%d (run serve+loadgen with the baseline's parameters)",
			base.Workload, base.Object, base.N, base.K, base.Eps, base.Seed, base.Clients, base.Queries,
			cur.Workload, cur.Object, cur.N, cur.K, cur.Eps, cur.Seed, cur.Clients, cur.Queries))
		return out
	}
	if cur.M != base.M {
		out = append(out, fmt.Sprintf("serve: base graph edges changed %d -> %d (deterministic build; scenario drift)",
			base.M, cur.M))
	}
	if cur.Edges != base.Edges {
		out = append(out, fmt.Sprintf("serve: served object edges changed %d -> %d (deterministic build; algorithm drift)",
			base.Edges, cur.Edges))
	}
	if cur.Digest != base.Digest {
		out = append(out, fmt.Sprintf("serve: network digest changed %s -> %s (served object drift)",
			base.Digest, cur.Digest))
	}
	if cur.ResponseDigest != base.ResponseDigest {
		out = append(out, fmt.Sprintf("serve: response digest changed %s -> %s (served answers drifted — the service no longer reproduces the library computation)",
			base.ResponseDigest, cur.ResponseDigest))
	}
	// Store digests are exact but optional: in-memory runs leave them
	// empty, and an empty side (either one) skips the comparison so
	// snapshot-booted and in-memory runs stay mutually gateable.
	if base.SnapshotDigest != "" && cur.SnapshotDigest != "" && cur.SnapshotDigest != base.SnapshotDigest {
		out = append(out, fmt.Sprintf("serve: snapshot digest changed %s -> %s (the *.csrz bytes drifted — store format or generator change)",
			base.SnapshotDigest, cur.SnapshotDigest))
	}
	if base.ArtifactDigest != "" && cur.ArtifactDigest != "" && cur.ArtifactDigest != base.ArtifactDigest {
		out = append(out, fmt.Sprintf("serve: artifact digest changed %s -> %s (the *.art bytes drifted — store format or build change)",
			base.ArtifactDigest, cur.ArtifactDigest))
	}
	if floor := base.QPS / (1 + maxNs); cur.QPS < floor {
		out = append(out, fmt.Sprintf("serve: qps %.0f -> %.0f below -%.0f%% tolerance",
			base.QPS, cur.QPS, maxNs*100))
	}
	if limit := base.P99Micros * (1 + maxNs); cur.P99Micros > limit {
		out = append(out, fmt.Sprintf("serve: p99 %.0fµs -> %.0fµs exceeds +%.0f%% tolerance",
			base.P99Micros, cur.P99Micros, maxNs*100))
	}
	return out
}

// qualityFloatTol is the relative slack for baseline comparison of the
// deterministic float fields. The pipeline is bit-deterministic on one
// platform; the hair of tolerance only absorbs cross-platform float
// printing/summation differences, never a real quality change.
const qualityFloatTol = 1e-9

// nearlyEqual reports |a−b| within qualityFloatTol relative to scale.
func nearlyEqual(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= qualityFloatTol*math.Max(scale, 1)
}

// diffQuality gates the spanner-quality report. Three layers, strictest
// first:
//
//  1. absolute: every fresh row's stretch (max and p99) must sit at or
//     under its own bound column — checked against the CURRENT report
//     only, so committing a bad baseline cannot mask a bound violation;
//  2. cross-mode: the accounted and measured rows of each scenario in
//     the fresh report must agree bit-for-bit (the mode-equivalence
//     contract of the measured pipeline);
//  3. baseline: deterministic fields must match the committed report
//     (ints exactly, floats near-exactly), with lightness and
//     ratio_vs_greedy allowed to improve freely but to worsen only
//     within maxRatio.
func diffQuality(base, cur *benchfmt.QualityReport, maxRatio float64) []string {
	if base.K != cur.K || base.Eps != cur.Eps || base.N != cur.N ||
		base.Seed != cur.Seed || base.Pairs != cur.Pairs {
		return []string{fmt.Sprintf("workload mismatch: baseline k=%d eps=%g n=%d seed=%d pairs=%d vs fresh k=%d eps=%g n=%d seed=%d pairs=%d (run benchquality with the baseline's parameters)",
			base.K, base.Eps, base.N, base.Seed, base.Pairs,
			cur.K, cur.Eps, cur.N, cur.Seed, cur.Pairs)}
	}
	var out []string
	curBy := make(map[string]benchfmt.QualityRow, len(cur.Rows))
	for _, r := range cur.Rows {
		key := r.Scenario + "/" + r.Mode
		curBy[key] = r
		if r.Stretch > r.Bound+qualityFloatTol {
			out = append(out, fmt.Sprintf("%s: stretch %.6f exceeds the paper bound %g (construction broken)",
				key, r.Stretch, r.Bound))
		}
		if r.StretchP99 > r.Bound+qualityFloatTol {
			out = append(out, fmt.Sprintf("%s: stretch_p99 %.6f exceeds the paper bound %g (construction broken)",
				key, r.StretchP99, r.Bound))
		}
	}
	for _, acc := range cur.Rows {
		if acc.Mode != "accounted" {
			continue
		}
		mea, ok := curBy[acc.Scenario+"/measured"]
		if !ok {
			out = append(out, fmt.Sprintf("%s: accounted row has no measured counterpart", acc.Scenario))
			continue
		}
		if acc.Edges != mea.Edges || acc.Lightness != mea.Lightness ||
			acc.Stretch != mea.Stretch || acc.StretchP99 != mea.StretchP99 {
			out = append(out, fmt.Sprintf("%s: accounted and measured rows diverge (edges %d vs %d, lightness %.9f vs %.9f) — mode-equivalence contract broken",
				acc.Scenario, acc.Edges, mea.Edges, acc.Lightness, mea.Lightness))
		}
	}
	for _, b := range base.Rows {
		key := b.Scenario + "/" + b.Mode
		c, ok := curBy[key]
		if !ok {
			out = append(out, fmt.Sprintf("%s: row missing from the fresh report", key))
			continue
		}
		if c.N != b.N || c.M != b.M {
			out = append(out, fmt.Sprintf("%s: input graph changed (n,m) (%d,%d) -> (%d,%d) (scenario drift)",
				key, b.N, b.M, c.N, c.M))
		}
		if c.Edges != b.Edges {
			out = append(out, fmt.Sprintf("%s: spanner edges changed %d -> %d (deterministic build; algorithm drift)",
				key, b.Edges, c.Edges))
		}
		if c.GreedyEdges != b.GreedyEdges {
			out = append(out, fmt.Sprintf("%s: greedy oracle edges changed %d -> %d (the oracle has no seed; this is a real change)",
				key, b.GreedyEdges, c.GreedyEdges))
		}
		for _, f := range []struct {
			name   string
			bv, cv float64
		}{
			{"stretch", b.Stretch, c.Stretch},
			{"stretch_p99", b.StretchP99, c.StretchP99},
			{"greedy_lightness", b.GreedyLightness, c.GreedyLightness},
			{"greedy_stretch", b.GreedyStretch, c.GreedyStretch},
		} {
			if !nearlyEqual(f.bv, f.cv) {
				out = append(out, fmt.Sprintf("%s: %s changed %.9f -> %.9f (deterministic field drift)",
					key, f.name, f.bv, f.cv))
			}
		}
		if limit := b.Lightness * (1 + maxRatio); c.Lightness > limit+qualityFloatTol {
			out = append(out, fmt.Sprintf("%s: lightness %.6f -> %.6f exceeds +%.0f%% envelope",
				key, b.Lightness, c.Lightness, maxRatio*100))
		}
		if limit := b.RatioVsGreedy * (1 + maxRatio); c.RatioVsGreedy > limit+qualityFloatTol {
			out = append(out, fmt.Sprintf("%s: ratio_vs_greedy %.6f -> %.6f exceeds +%.0f%% envelope",
				key, b.RatioVsGreedy, c.RatioVsGreedy, maxRatio*100))
		}
	}
	return out
}

package main

import (
	"path/filepath"
	"strings"
	"testing"

	"lightnet/internal/benchfmt"
)

func engineReport(nsPerRound float64, allocs, messages int64, rounds int) *benchfmt.EngineReport {
	m := benchfmt.Measurement{
		Commit: "x", NsPerOp: int64(nsPerRound) * int64(rounds), RoundsPerOp: rounds,
		NsPerRound: nsPerRound, AllocsPerOp: allocs, BytesPerOp: 1 << 20, Messages: messages,
	}
	p := m
	slt1m, sp1m := m, m
	slt1m.Workload = "slt-measured knn n=1000000 seed=1 workers=1 (single run)"
	sp1m.Workload = "spanner-measured knn n=1000000 seed=1 workers=1 (single run)"
	return &benchfmt.EngineReport{
		Workload: "w", After: m, SLTPipeline: &p, SpannerPipeline: &p,
		SLTPipeline1M: &slt1m, SpannerPipeline1M: &sp1m,
	}
}

func TestEngineIdenticalPasses(t *testing.T) {
	base := engineReport(1000, 500, 12345, 15)
	if v := diffEngine(base, engineReport(1000, 500, 12345, 15), 0.25, 0.01, 1.0, true); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	// Improvements pass too.
	if v := diffEngine(base, engineReport(700, 400, 12345, 15), 0.25, 0.01, 1.0, true); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
	// Within-tolerance noise passes.
	if v := diffEngine(base, engineReport(1200, 500, 12345, 15), 0.25, 0.01, 1.0, true); len(v) != 0 {
		t.Fatalf("within-tolerance noise flagged: %v", v)
	}
}

func TestEngineSyntheticRegressionFails(t *testing.T) {
	base := engineReport(1000, 500, 12345, 15)
	cases := []struct {
		name string
		cur  *benchfmt.EngineReport
	}{
		{"ns-regress", engineReport(1300, 500, 12345, 15)},
		{"alloc-increase", engineReport(1000, 520, 12345, 15)},
		{"message-drift", engineReport(1000, 500, 12999, 15)},
		{"round-drift", engineReport(1000, 500, 12345, 17)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v := diffEngine(base, tc.cur, 0.25, 0.01, 1.0, true); len(v) == 0 {
				t.Fatal("regression not flagged")
			}
		})
	}
	// A pipeline entry disappearing from the fresh report is a coverage
	// loss and must fail.
	cur := engineReport(1000, 500, 12345, 15)
	cur.SpannerPipeline = nil
	if v := diffEngine(base, cur, 0.25, 0.01, 1.0, true); len(v) == 0 {
		t.Fatal("missing pipeline measurement not flagged")
	}
	// The converse — baseline without the entry — is not gated yet.
	base.SpannerPipeline = nil
	if v := diffEngine(base, engineReport(1000, 500, 12345, 15), 0.25, 0.01, 1.0, true); len(v) != 0 {
		t.Fatalf("ungated new measurement flagged: %v", v)
	}
}

// TestEngineWorkloadMismatch: a fresh report from a different workload
// (e.g. a -scenario run) is reported as a mismatch, not as algorithm
// drift.
func TestEngineWorkloadMismatch(t *testing.T) {
	base := engineReport(1000, 500, 12345, 15)
	cur := engineReport(1000, 500, 99999, 20)
	cur.Workload = "Luby MIS on scenario \"ba:m=4\""
	v := diffEngine(base, cur, 0.25, 0.01, 1.0, true)
	if len(v) != 1 || !strings.Contains(v[0], "workload mismatch") {
		t.Fatalf("want a single workload-mismatch violation, got %v", v)
	}
}

// TestEngine1MGating: the n=10⁶ single-run entries are gated with their
// own coarse ns tolerance; their absence from the fresh report fails
// only under -require-1m (PR CI skips the runs, nightly demands them).
func TestEngine1MGating(t *testing.T) {
	base := engineReport(1000, 500, 12345, 15)
	missing := engineReport(1000, 500, 12345, 15)
	missing.SLTPipeline1M, missing.SpannerPipeline1M = nil, nil
	if v := diffEngine(base, missing, 0.25, 0.01, 1.0, false); len(v) != 0 {
		t.Fatalf("optional absent 1m entries flagged without -require-1m: %v", v)
	}
	v := diffEngine(base, missing, 0.25, 0.01, 1.0, true)
	if len(v) != 2 || !strings.Contains(v[0], "slt_pipeline_1m") {
		t.Fatalf("want 2 missing-1m violations under -require-1m, got %v", v)
	}
	// Deterministic columns of a present 1m entry are exact.
	drift := engineReport(1000, 500, 12345, 15)
	drift.SLTPipeline1M.Messages++
	v = diffEngine(base, drift, 0.25, 0.01, 1.0, false)
	if len(v) != 1 || !strings.Contains(v[0], "slt_pipeline_1m") || !strings.Contains(v[0], "knn n=1000000") {
		t.Fatalf("1m message drift not flagged with its workload, got %v", v)
	}
	// The 1m ns tolerance is independent of (and coarser than) the
	// n=2048 tolerance: +80%% passes at maxNs1m=1.0 while the same drift
	// on the 2048 entries would fail at 25%%.
	slow := engineReport(1000, 500, 12345, 15)
	slow.SLTPipeline1M.NsPerRound *= 1.8
	if v := diffEngine(base, slow, 0.25, 0.01, 1.0, false); len(v) != 0 {
		t.Fatalf("within-coarse-tolerance 1m ns flagged: %v", v)
	}
	slow.SLTPipeline1M.NsPerRound = base.SLTPipeline1M.NsPerRound * 2.5
	if v := diffEngine(base, slow, 0.25, 0.01, 1.0, false); len(v) == 0 {
		t.Fatal("1m ns blowup beyond coarse tolerance not flagged")
	}
	// A 1m entry measured on a different input (a shrunken CI smoke) is
	// never silently compared: without -require-1m it is skipped (even
	// with drifted numbers), under -require-1m it is a mismatch error.
	wrongN := engineReport(1000, 500, 12345, 15)
	wrongN.SLTPipeline1M.Workload = "slt-measured knn n=100000 seed=1 workers=1 (single run)"
	wrongN.SLTPipeline1M.Messages *= 3
	if v := diffEngine(base, wrongN, 0.25, 0.01, 1.0, false); len(v) != 0 {
		t.Fatalf("smoke-scale 1m entry compared against the 10^6 baseline: %v", v)
	}
	v = diffEngine(base, wrongN, 0.25, 0.01, 1.0, true)
	if len(v) != 1 || !strings.Contains(v[0], "workload mismatch") {
		t.Fatalf("want per-measurement workload mismatch under -require-1m, got %v", v)
	}
}

func genReport(edges int, speedup float64) *benchfmt.GeneratorsReport {
	return &benchfmt.GeneratorsReport{
		Workload: "w", N: 100000, Dim: 2,
		Comparisons: []benchfmt.GeneratorComparison{
			{Regime: "sparse", Radius: 0.005, Edges: edges, BruteMS: 100 * speedup, GridMS: 100, Speedup: speedup},
		},
		MillionPoint: &benchfmt.MillionPoint{N: 1000000, Radius: 0.003, Edges: 13852117, WallMS: 20000},
	}
}

func TestGeneratorsGate(t *testing.T) {
	base := genReport(415347, 50)
	if v := diffGenerators(base, genReport(415347, 50), 0.25); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	if v := diffGenerators(base, genReport(415347, 30), 0.25); len(v) == 0 {
		t.Fatal("speedup regression not flagged")
	}
	if v := diffGenerators(base, genReport(415000, 50), 0.25); len(v) == 0 {
		t.Fatal("edge drift not flagged")
	}
	// Fresh run without the million-point datapoint still passes (CI
	// skips it with -million=false).
	cur := genReport(415347, 50)
	cur.MillionPoint = nil
	if v := diffGenerators(base, cur, 0.25); len(v) != 0 {
		t.Fatalf("absent million-point flagged: %v", v)
	}
}

// qualityReport builds a two-scenario report whose accounted and
// measured rows agree — the shape benchquality emits when the pipeline
// contract holds.
func qualityReport() *benchfmt.QualityReport {
	rep := &benchfmt.QualityReport{K: 2, Eps: 0.25, N: 128, Seed: 1, Pairs: 2000}
	for _, sc := range []struct {
		name      string
		edges     int
		lightness float64
		stretch   float64
	}{
		{"lbcycle", 128, 1.008, 1},
		{"lbbipartite", 1072, 8.441, 3},
	} {
		for _, mode := range []string{"accounted", "measured"} {
			rep.Rows = append(rep.Rows, benchfmt.QualityRow{
				Scenario: sc.name, Mode: mode, N: 128, M: 4096, Bound: 3,
				Edges: sc.edges, Lightness: sc.lightness,
				Stretch: sc.stretch, StretchP99: sc.stretch,
				GreedyEdges: 127, GreedyLightness: 1.0, GreedyStretch: 2.9,
				RatioVsGreedy: sc.lightness,
			})
		}
	}
	return rep
}

func TestQualityIdenticalPasses(t *testing.T) {
	if v := diffQuality(qualityReport(), qualityReport(), 0.05); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	// Lightness improvements pass (the envelope is one-sided) as long as
	// the deterministic fields they feed move with them in the baseline —
	// here only the envelope fields move.
	cur := qualityReport()
	for i := range cur.Rows {
		cur.Rows[i].RatioVsGreedy *= 0.9
	}
	if v := diffQuality(qualityReport(), cur, 0.05); len(v) != 0 {
		t.Fatalf("ratio improvement flagged: %v", v)
	}
}

// TestQualitySyntheticRegressionFails proves the gate actually fails on
// each class of quality regression — the acceptance criterion that the
// bound check is demonstrably live, not vacuously green.
func TestQualitySyntheticRegressionFails(t *testing.T) {
	base := qualityReport()
	mutate := func(f func(*benchfmt.QualityReport)) *benchfmt.QualityReport {
		cur := qualityReport()
		f(cur)
		return cur
	}
	cases := []struct {
		name string
		cur  *benchfmt.QualityReport
		want string
	}{
		{"stretch-above-bound", mutate(func(r *benchfmt.QualityReport) {
			r.Rows[0].Stretch = 3.2
			r.Rows[1].Stretch = 3.2 // keep modes consistent: the bound check alone must fire
		}), "exceeds the paper bound"},
		{"p99-above-bound", mutate(func(r *benchfmt.QualityReport) {
			r.Rows[0].StretchP99 = 3.01
			r.Rows[1].StretchP99 = 3.01
		}), "stretch_p99"},
		{"ratio-inflation", mutate(func(r *benchfmt.QualityReport) {
			r.Rows[2].RatioVsGreedy *= 1.10
			r.Rows[3].RatioVsGreedy *= 1.10
		}), "ratio_vs_greedy"},
		{"lightness-inflation", mutate(func(r *benchfmt.QualityReport) {
			r.Rows[2].Lightness *= 1.10
			r.Rows[3].Lightness *= 1.10
		}), "lightness"},
		{"edge-drift", mutate(func(r *benchfmt.QualityReport) {
			r.Rows[0].Edges++
			r.Rows[1].Edges++
		}), "spanner edges changed"},
		{"greedy-oracle-drift", mutate(func(r *benchfmt.QualityReport) {
			r.Rows[0].GreedyEdges--
			r.Rows[1].GreedyEdges--
		}), "greedy oracle"},
		{"mode-divergence", mutate(func(r *benchfmt.QualityReport) {
			r.Rows[1].Lightness *= 1.001 // measured row drifts off accounted
		}), "mode-equivalence"},
		{"missing-row", mutate(func(r *benchfmt.QualityReport) {
			r.Rows = r.Rows[:2]
		}), "missing from the fresh report"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := diffQuality(base, tc.cur, 0.05)
			if len(v) == 0 {
				t.Fatal("regression not flagged")
			}
			if !strings.Contains(strings.Join(v, "\n"), tc.want) {
				t.Fatalf("violations %v do not mention %q", v, tc.want)
			}
		})
	}
}

// TestQualityBoundCheckIgnoresBaseline: a stretch violation fires even
// when the baseline itself carries the same bad value — committing a
// broken baseline cannot neutralise the paper-bound check.
func TestQualityBoundCheckIgnoresBaseline(t *testing.T) {
	bad := qualityReport()
	for i := range bad.Rows {
		bad.Rows[i].Stretch = 3.5
	}
	v := diffQuality(bad, bad, 0.05)
	if len(v) == 0 {
		t.Fatal("bound violation masked by a matching baseline")
	}
	if !strings.Contains(strings.Join(v, "\n"), "exceeds the paper bound") {
		t.Fatalf("violations %v do not mention the paper bound", v)
	}
}

func TestQualityWorkloadMismatch(t *testing.T) {
	cur := qualityReport()
	cur.Seed = 7
	v := diffQuality(qualityReport(), cur, 0.05)
	if len(v) != 1 || !strings.Contains(v[0], "workload mismatch") {
		t.Fatalf("want a single workload-mismatch violation, got %v", v)
	}
}

// TestCommittedBaselinesSelfConsistent: diffing the committed baselines
// against themselves passes — the gate's fixed point, and a parse check
// of the real files.
func TestCommittedBaselinesSelfConsistent(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, tc := range []struct{ kind, file string }{
		{"engine", "BENCH_engine.json"},
		{"generators", "BENCH_generators.json"},
		{"quality", "BENCH_quality.json"},
		{"serve", "BENCH_serve.json"},
	} {
		path := filepath.Join(root, tc.file)
		v, err := diff(tc.kind, path, path, 0.25, 0.01, 0.05, 1.0, true)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if len(v) != 0 {
			t.Fatalf("%s not self-consistent: %v", tc.file, v)
		}
	}
}

func serveReport() *benchfmt.ServeReport {
	return &benchfmt.ServeReport{
		Workload: "er n=512 p=0.0078 maxw=10", Object: "spanner",
		N: 512, M: 1024, K: 2, Eps: 0.25, Seed: 1,
		Edges: 900, Digest: "00000000deadbeef",
		Clients: 8, Queries: 5000, Errors: 0,
		ResponseDigest: "cafe0123cafe0123",
		QPS:            3000, P50Micros: 400, P99Micros: 2000,
	}
}

func TestServeIdenticalPasses(t *testing.T) {
	if v := diffServe(serveReport(), serveReport(), 0.25); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	// Improvements pass too.
	better := serveReport()
	better.QPS = 9000
	better.P99Micros = 500
	if v := diffServe(serveReport(), better, 0.25); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestServeSyntheticRegressionFails(t *testing.T) {
	cases := []struct {
		name, want string
		mutate     func(*benchfmt.ServeReport)
	}{
		{"digest drift", "network digest changed", func(r *benchfmt.ServeReport) { r.Digest = "ffff" }},
		{"response drift", "response digest changed", func(r *benchfmt.ServeReport) { r.ResponseDigest = "ffff" }},
		{"edges drift", "served object edges changed", func(r *benchfmt.ServeReport) { r.Edges++ }},
		{"base edges drift", "base graph edges changed", func(r *benchfmt.ServeReport) { r.M++ }},
		{"qps collapse", "below", func(r *benchfmt.ServeReport) { r.QPS = 100 }},
		{"p99 blowup", "exceeds", func(r *benchfmt.ServeReport) { r.P99Micros = 99999 }},
		{"errors", "must be 0", func(r *benchfmt.ServeReport) { r.Errors = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := serveReport()
			tc.mutate(cur)
			v := diffServe(serveReport(), cur, 0.25)
			if len(v) == 0 {
				t.Fatal("regression not flagged")
			}
			if !strings.Contains(strings.Join(v, "\n"), tc.want) {
				t.Fatalf("violations %v do not mention %q", v, tc.want)
			}
		})
	}
}

// TestServeErrorCheckIgnoresBaseline: a fresh run with errors fails even
// when the committed baseline itself carries errors — a bad baseline
// cannot mask a broken service.
func TestServeErrorCheckIgnoresBaseline(t *testing.T) {
	bad := serveReport()
	bad.Errors = 5
	v := diffServe(bad, bad, 0.25)
	if len(v) == 0 {
		t.Fatal("error responses masked by a matching baseline")
	}
	if !strings.Contains(strings.Join(v, "\n"), "must be 0") {
		t.Fatalf("violations %v do not mention the zero-error requirement", v)
	}
}

func TestServeWorkloadMismatch(t *testing.T) {
	cur := serveReport()
	cur.Clients = 16
	v := diffServe(serveReport(), cur, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "workload mismatch") {
		t.Fatalf("want a single workload-mismatch violation, got %v", v)
	}
}

package main

import (
	"path/filepath"
	"strings"
	"testing"

	"lightnet/internal/benchfmt"
)

func engineReport(nsPerRound float64, allocs, messages int64, rounds int) *benchfmt.EngineReport {
	m := benchfmt.Measurement{
		Commit: "x", NsPerOp: int64(nsPerRound) * int64(rounds), RoundsPerOp: rounds,
		NsPerRound: nsPerRound, AllocsPerOp: allocs, BytesPerOp: 1 << 20, Messages: messages,
	}
	p := m
	return &benchfmt.EngineReport{Workload: "w", After: m, SLTPipeline: &p, SpannerPipeline: &p}
}

func TestEngineIdenticalPasses(t *testing.T) {
	base := engineReport(1000, 500, 12345, 15)
	if v := diffEngine(base, engineReport(1000, 500, 12345, 15), 0.25, 0.01); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	// Improvements pass too.
	if v := diffEngine(base, engineReport(700, 400, 12345, 15), 0.25, 0.01); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
	// Within-tolerance noise passes.
	if v := diffEngine(base, engineReport(1200, 500, 12345, 15), 0.25, 0.01); len(v) != 0 {
		t.Fatalf("within-tolerance noise flagged: %v", v)
	}
}

func TestEngineSyntheticRegressionFails(t *testing.T) {
	base := engineReport(1000, 500, 12345, 15)
	cases := []struct {
		name string
		cur  *benchfmt.EngineReport
	}{
		{"ns-regress", engineReport(1300, 500, 12345, 15)},
		{"alloc-increase", engineReport(1000, 520, 12345, 15)},
		{"message-drift", engineReport(1000, 500, 12999, 15)},
		{"round-drift", engineReport(1000, 500, 12345, 17)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v := diffEngine(base, tc.cur, 0.25, 0.01); len(v) == 0 {
				t.Fatal("regression not flagged")
			}
		})
	}
	// A pipeline entry disappearing from the fresh report is a coverage
	// loss and must fail.
	cur := engineReport(1000, 500, 12345, 15)
	cur.SpannerPipeline = nil
	if v := diffEngine(base, cur, 0.25, 0.01); len(v) == 0 {
		t.Fatal("missing pipeline measurement not flagged")
	}
	// The converse — baseline without the entry — is not gated yet.
	base.SpannerPipeline = nil
	if v := diffEngine(base, engineReport(1000, 500, 12345, 15), 0.25, 0.01); len(v) != 0 {
		t.Fatalf("ungated new measurement flagged: %v", v)
	}
}

// TestEngineWorkloadMismatch: a fresh report from a different workload
// (e.g. a -scenario run) is reported as a mismatch, not as algorithm
// drift.
func TestEngineWorkloadMismatch(t *testing.T) {
	base := engineReport(1000, 500, 12345, 15)
	cur := engineReport(1000, 500, 99999, 20)
	cur.Workload = "Luby MIS on scenario \"ba:m=4\""
	v := diffEngine(base, cur, 0.25, 0.01)
	if len(v) != 1 || !strings.Contains(v[0], "workload mismatch") {
		t.Fatalf("want a single workload-mismatch violation, got %v", v)
	}
}

func genReport(edges int, speedup float64) *benchfmt.GeneratorsReport {
	return &benchfmt.GeneratorsReport{
		Workload: "w", N: 100000, Dim: 2,
		Comparisons: []benchfmt.GeneratorComparison{
			{Regime: "sparse", Radius: 0.005, Edges: edges, BruteMS: 100 * speedup, GridMS: 100, Speedup: speedup},
		},
		MillionPoint: &benchfmt.MillionPoint{N: 1000000, Radius: 0.003, Edges: 13852117, WallMS: 20000},
	}
}

func TestGeneratorsGate(t *testing.T) {
	base := genReport(415347, 50)
	if v := diffGenerators(base, genReport(415347, 50), 0.25); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	if v := diffGenerators(base, genReport(415347, 30), 0.25); len(v) == 0 {
		t.Fatal("speedup regression not flagged")
	}
	if v := diffGenerators(base, genReport(415000, 50), 0.25); len(v) == 0 {
		t.Fatal("edge drift not flagged")
	}
	// Fresh run without the million-point datapoint still passes (CI
	// skips it with -million=false).
	cur := genReport(415347, 50)
	cur.MillionPoint = nil
	if v := diffGenerators(base, cur, 0.25); len(v) != 0 {
		t.Fatalf("absent million-point flagged: %v", v)
	}
}

// TestCommittedBaselinesSelfConsistent: diffing the committed baselines
// against themselves passes — the gate's fixed point, and a parse check
// of the real files.
func TestCommittedBaselinesSelfConsistent(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, tc := range []struct{ kind, file string }{
		{"engine", "BENCH_engine.json"},
		{"generators", "BENCH_generators.json"},
	} {
		path := filepath.Join(root, tc.file)
		v, err := diff(tc.kind, path, path, 0.25, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if len(v) != 0 {
			t.Fatalf("%s not self-consistent: %v", tc.file, v)
		}
	}
}

package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"lightnet"
	"lightnet/internal/store"
)

// runBuild is the build-once half of the build-once/serve-many split:
// generate a scenario graph, snapshot it to a *.csrz file, optionally
// build a spanner or SLT on it and serialize the result as a *.art
// artifact pinned to the snapshot's digest. `lightnet serve -snapshot
// ... -artifact ...` then cold-starts from the files without
// regenerating or rebuilding anything.
//
// The timing line is machine-parseable (the CI cold-start gate compares
// it against serve's boot time):
//
//	timing: generate_ms=12 build_ms=340 write_ms=8
func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	var (
		kind     = fs.String("graph", "er", "scenario spec (see `lightnet scenarios`)")
		n        = fs.Int("n", 512, "number of vertices")
		seed     = fs.Int64("seed", 1, "generator and build seed")
		obj      = fs.String("obj", "spanner", "artifact to build: spanner | slt | sltinv | none")
		k        = fs.Int("k", 2, "spanner stretch parameter")
		eps      = fs.Float64("eps", 0.25, "ε (γ for sltinv)")
		root     = fs.Int("root", 0, "SLT root")
		mode     = fs.String("mode", "accounted", "slt/spanner execution: accounted | measured")
		work     = fs.Int("workers", 0, "engine worker pool for measured runs (0 = GOMAXPROCS)")
		snapPath = fs.String("snapshot", "", "write the graph snapshot (*.csrz) here (required)")
		artPath  = fs.String("artifact", "", "write the build artifact (*.art) here (required unless -obj none)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *snapPath == "" {
		return errors.New("-snapshot is required: the path to write the graph snapshot")
	}
	if *obj != "none" && *artPath == "" {
		return errors.New("-artifact is required unless -obj none")
	}
	switch *mode {
	case "accounted":
	case "measured":
		if *obj != "slt" && *obj != "spanner" {
			return fmt.Errorf("-mode measured is supported only for -obj slt and -obj spanner (got %q)", *obj)
		}
	default:
		return fmt.Errorf("unknown -mode %q (accounted|measured)", *mode)
	}

	t0 := time.Now()
	g, err := makeGraph(*kind, *n, *seed)
	if err != nil {
		return err
	}
	g.Freeze()
	generateMS := time.Since(t0).Milliseconds()

	tw := time.Now()
	graphDigest, err := store.WriteGraph(*snapPath, g, store.GraphMeta{Workload: *kind, Seed: *seed})
	if err != nil {
		return err
	}
	writeMS := time.Since(tw).Milliseconds()
	fmt.Printf("snapshot: %s n=%d m=%d digest=%s\n", *snapPath, g.N(), g.M(), graphDigest)

	var buildMS int64
	if *obj != "none" {
		opts := []lightnet.Option{lightnet.WithSeed(*seed)}
		if *mode == "measured" {
			opts = append(opts, lightnet.WithMeasured(), lightnet.WithWorkers(*work))
		}
		var art *store.Artifact
		tb := time.Now()
		switch *obj {
		case "spanner":
			res, err := lightnet.BuildLightSpanner(g, *k, *eps, opts...)
			if err != nil {
				return err
			}
			art = lightnet.SpannerArtifact(res, g, graphDigest, *k, *eps, *seed)
		case "slt":
			res, err := lightnet.BuildSLT(g, lightnet.Vertex(*root), *eps, opts...)
			if err != nil {
				return err
			}
			art = lightnet.SLTArtifact(res, g, graphDigest, "slt", *eps, *seed)
		case "sltinv":
			res, err := lightnet.BuildSLTInverse(g, lightnet.Vertex(*root), *eps, opts...)
			if err != nil {
				return err
			}
			art = lightnet.SLTArtifact(res, g, graphDigest, "sltinv", *eps, *seed)
		default:
			return fmt.Errorf("unknown -obj %q (spanner|slt|sltinv|none)", *obj)
		}
		buildMS = time.Since(tb).Milliseconds()

		tw := time.Now()
		artDigest, err := store.WriteArtifact(*artPath, art)
		if err != nil {
			return err
		}
		writeMS += time.Since(tw).Milliseconds()
		fmt.Printf("artifact: %s kind=%s edges=%d lightness=%.2f digest=%s\n",
			*artPath, art.Kind, len(art.Edges), art.Lightness, artDigest)
	}
	fmt.Printf("timing: generate_ms=%d build_ms=%d write_ms=%d\n", generateMS, buildMS, writeMS)
	return nil
}

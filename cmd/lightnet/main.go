// Command lightnet builds any of the paper's objects on a generated
// graph and prints certified quality plus distributed cost.
//
// Usage:
//
//	lightnet -obj spanner   -graph er -n 512 -k 2 -eps 0.25
//	lightnet -obj spanner   -graph er -n 512 -k 2 -mode measured
//	lightnet -obj slt       -graph geometric -n 512 -eps 0.5 -root 0
//	lightnet -obj slt       -graph er -n 512 -eps 0.5 -mode measured
//	lightnet -obj sltinv    -graph er -n 512 -gamma 0.25
//	lightnet -obj net       -graph grid -n 400 -scale 10 -delta 0.5
//	lightnet -obj doubling  -graph geometric -n 256 -eps 0.5
//	lightnet -obj psi       -graph hard -n 400
//	lightnet -obj mst       -graph er -n 1024
//
// The SLT and the spanner support two execution modes: -mode accounted
// (default) charges the paper's primitive round formulas to a ledger;
// -mode measured runs the full §4/§5 pipeline as genuine per-vertex
// message passing on the CONGEST engine and reports measured rounds,
// messages and a per-stage breakdown. A measured run builds the
// identical object, bit for bit, as its accounted twin (for the
// spanner: the accounted run with -cluster baswana, the distributable
// per-bucket choice the pipeline executes).
//
// Measured runs accept -faults with a deterministic fault spec — the
// engine then drops/duplicates/delays messages and crashes vertices per
// the plan, every pipeline stage is validated and retried, and crash
// faults degrade the build to the surviving component:
//
//	lightnet -obj slt -graph er -n 512 -mode measured -faults drop=0.002,delay=0.01
//	lightnet -obj spanner -graph er -n 512 -mode measured -faults crash=17@0
//
// -graph accepts any scenario spec from the registry — a name plus
// optional parameters, e.g. "ba:m=4,maxw=10" or "knn:k=6,dim=3". The
// scenarios subcommand lists the catalog (full details in
// docs/SCENARIOS.md):
//
//	lightnet scenarios
//	lightnet -obj spanner -graph ba:m=4 -n 4096
//	lightnet -obj mst -graph edgelist:path=road.txt
//
// The bench subcommand runs the reproducible experiment pipeline: a
// JSON grid file (seed, repeats, sizes, workloads, per-construction
// knobs) is swept and a timestamped run folder of per-experiment CSVs
// plus logs is written. Re-running the same grid reproduces identical
// CSV content modulo the wall-time column.
//
// Each completed cell is checkpointed in the run folder's manifest, so
// a killed run resumes in seconds without recomputing finished cells:
//
//	lightnet bench -grid examples/grids/quick.json
//	lightnet bench -grid grid.json -out results/nightly
//	lightnet bench -grid grid.json -out results/nightly -resume
//	lightnet bench                      (built-in headline grid)
//
// The serve subcommand is the build-once, query-many service: it builds
// the spanner (or SLT) once at startup and answers /distance, /path and
// /stretch queries over HTTP, with request batching and an LRU response
// cache on the hot path; loadgen replays a seeded deterministic query
// stream against it and reports QPS, p50/p99 latency and the ordered
// response digest (written as BENCH_serve.json with -out, gated in CI by
// cmd/benchdiff -kind serve):
//
//	lightnet serve -graph er -n 512 -k 2 -eps 0.25 -addr 127.0.0.1:8080
//	lightnet loadgen -addr http://127.0.0.1:8080 -clients 8 -queries 5000 -out BENCH_serve.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"lightnet"
	"lightnet/internal/benchfmt"
	"lightnet/internal/congest"
	"lightnet/internal/experiments"
	"lightnet/internal/profiling"
	"lightnet/internal/serve"
	"lightnet/internal/store"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		if err := runBench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "lightnet bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "build" {
		if err := runBuild(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "lightnet build:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "lightnet serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		if err := runLoadgen(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "lightnet loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scenarios" {
		printScenarios()
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lightnet:", err)
		os.Exit(1)
	}
}

// runBench executes the experiment pipeline described by a grid file.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	gridPath := fs.String("grid", "", "JSON experiment-grid file (default: built-in headline grid)")
	out := fs.String("out", "", "output folder (default: bench-<timestamp>)")
	resume := fs.Bool("resume", false, "resume a killed run: skip the cells -out's manifest marks done")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the sweep; relative paths land in the run folder")
	memprofile := fs.String("memprofile", "", "write an allocation profile of the sweep; relative paths land in the run folder")
	tracePath := fs.String("trace", "", "write a runtime execution trace of the sweep; relative paths land in the run folder")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *resume && *out == "" {
		return errors.New("-resume needs -out: the folder of the run to pick up")
	}
	grid := experiments.DefaultGrid()
	if *gridPath != "" {
		var err error
		if grid, err = experiments.LoadGrid(*gridPath); err != nil {
			return err
		}
	}
	dir := *out
	if dir == "" {
		dir = "bench-" + time.Now().Format("20060102-150405")
	}
	// Profiles live next to the CSVs they explain: a relative profile
	// path is resolved inside the run folder, so the sweep's artifacts
	// travel as one directory.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	inRun := func(p string) string {
		if p == "" || filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(dir, p)
	}
	stopProf, err := profiling.Start(inRun(*cpuprofile), inRun(*memprofile), inRun(*tracePath))
	if err != nil {
		return err
	}
	err = experiments.RunGridResume(grid, dir, os.Stdout, *resume)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Printf("run folder: %s (csv/ per experiment, logs/run.log, grid.json)\n", dir)
	return nil
}

// runServe is the build-once, query-many service: it builds (or loads)
// a graph, builds the spanner or SLT once, and serves distance/path/
// stretch queries over HTTP until SIGINT/SIGTERM, then drains in-flight
// batches and exits.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile = fs.String("addrfile", "", "write the bound address to this file once listening (for scripts using -addr :0)")
		obj      = fs.String("obj", "spanner", "served object: spanner | slt")
		kind     = fs.String("graph", "er", "scenario spec (see `lightnet scenarios`)")
		n        = fs.Int("n", 512, "number of vertices")
		k        = fs.Int("k", 2, "spanner stretch parameter")
		eps      = fs.Float64("eps", 0.25, "ε")
		root     = fs.Int("root", 0, "SLT root")
		seed     = fs.Int64("seed", 1, "build seed")
		load     = fs.String("load", "", "load the graph from this file instead of generating")
		snapPath = fs.String("snapshot", "", "cold-start: load the base graph from this *.csrz snapshot (see `lightnet build`)")
		artPath  = fs.String("artifact", "", "cold-start: load the served object from this *.art artifact (requires -snapshot)")
		cacheSz  = fs.Int("cache", 0, "LRU response-cache capacity (0 = default 65536, negative = disabled)")
		window   = fs.Duration("batch-window", 0, "batcher coalescing window (0 = default 200µs)")
		maxBatch = fs.Int("batch-max", 0, "flush a batch at this many pending queries (0 = default 256)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *artPath != "" && *snapPath == "" {
		return errors.New("-artifact requires -snapshot: an artifact only makes sense against its parent snapshot")
	}
	if *snapPath != "" && *load != "" {
		return errors.New("-snapshot and -load are mutually exclusive")
	}

	var g *lightnet.Graph
	var err error
	var snap *store.Snapshot
	workload := *kind
	switch {
	case *snapPath != "":
		// Cold start: the graph comes from a store snapshot, not a
		// generator — millisecond boot instead of regeneration.
		if snap, err = store.OpenGraph(*snapPath); err != nil {
			return err
		}
		g = snap.Graph
		workload = snap.Meta.Workload
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			return ferr
		}
		g, err = lightnet.ReadGraph(f)
		f.Close()
		workload = "load:" + *load
	default:
		g, err = makeGraph(*kind, *n, *seed)
	}
	if err != nil {
		return err
	}

	var nw *serve.Network
	if *artPath != "" {
		// Full cold start: served object from the artifact too — no
		// spanner/SLT rebuild. The artifact's GraphDigest must pin
		// exactly this snapshot.
		art, aerr := store.OpenArtifact(*artPath)
		if aerr != nil {
			return aerr
		}
		nw, err = serve.NetworkFromArtifact(snap, art)
	} else {
		switch *obj {
		case "spanner":
			nw, err = serve.BuildSpannerNetwork(g, workload, *k, *eps, *seed)
		case "slt":
			nw, err = serve.BuildSLTNetwork(g, workload, lightnet.Vertex(*root), *eps, *seed)
		default:
			return fmt.Errorf("unknown -obj %q (spanner|slt)", *obj)
		}
		if err == nil && snap != nil {
			nw.SnapshotDigest = snap.Digest
		}
	}
	if err != nil {
		return err
	}

	srv := serve.NewServer(nw, serve.Options{
		CacheSize: *cacheSz,
		Batch:     serve.BatcherOptions{Window: *window, MaxBatch: *maxBatch},
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(l.Addr().String()), 0o644); err != nil {
			l.Close()
			return err
		}
	}
	fmt.Printf("serving %s on %s: n=%d m=%d edges=%d lightness=%.2f digest=%s\n",
		nw.Object, l.Addr(), g.N(), g.M(), nw.Edges, nw.Lightness, nw.Digest)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()
	if err := srv.Serve(l); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("drained: queries=%d cache hit/miss=%d/%d batches=%d sweeps=%d\n",
		st.Queries, st.CacheHits, st.CacheMisses, st.Batches, st.Sweeps)
	return nil
}

// runLoadgen replays the seeded deterministic query stream against a
// running lightnet serve instance and reports throughput, latency
// percentiles and the ordered response digest; -out writes the
// BENCH_serve.json report the CI gate compares.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "base URL of the server")
		clients = fs.Int("clients", 8, "concurrent closed-loop workers")
		queries = fs.Int("queries", 5000, "total queries to issue")
		seed    = fs.Int64("seed", 1, "query-stream seed")
		out     = fs.String("out", "", "write a BENCH_serve.json report here")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	res, err := serve.RunLoadgen(serve.LoadgenOptions{
		BaseURL: *addr, Clients: *clients, Queries: *queries, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("loadgen: %s %s n=%d edges=%d\n",
		res.Info.Object, res.Info.Workload, res.Info.N, res.Info.Edges)
	fmt.Printf("queries=%d errors=%d clients=%d elapsed=%s\n",
		res.Queries, res.Errors, *clients, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("qps=%.0f p50=%s p99=%s digest=%s\n",
		res.QPS, res.P50, res.P99, res.ResponseDigest)
	if res.Errors > 0 {
		return fmt.Errorf("%d queries failed", res.Errors)
	}
	if *out != "" {
		rep := benchfmt.ServeReport{
			Workload: res.Info.Workload, Object: res.Info.Object,
			N: res.Info.N, M: res.Info.M, K: res.Info.K,
			Eps: res.Info.Eps, Seed: res.Info.Seed,
			Edges: res.Info.Edges, Digest: res.Info.Digest,
			SnapshotDigest: res.Info.SnapshotDigest,
			ArtifactDigest: res.Info.ArtifactDigest,
			Clients:        *clients, Queries: res.Queries, Errors: res.Errors,
			ResponseDigest: res.ResponseDigest,
			QPS:            res.QPS,
			P50Micros:      float64(res.P50.Nanoseconds()) / 1e3,
			P99Micros:      float64(res.P99.Nanoseconds()) / 1e3,
		}
		if err := benchfmt.WriteFile(*out, rep); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", *out)
	}
	return nil
}

func run() error {
	var (
		obj   = flag.String("obj", "spanner", "spanner|slt|sltinv|net|doubling|psi|mst")
		kind  = flag.String("graph", "er", "scenario spec, e.g. er, geometric:dim=3, ba:m=4 (see `lightnet scenarios`)")
		n     = flag.Int("n", 512, "number of vertices")
		k     = flag.Int("k", 2, "spanner stretch parameter")
		eps   = flag.Float64("eps", 0.25, "ε")
		gamma = flag.Float64("gamma", 0.25, "γ for the inverse SLT")
		scale = flag.Float64("scale", 0, "net scale Δ (default: diameter/6)")
		delta = flag.Float64("delta", 0.5, "net approximation δ")
		root  = flag.Int("root", 0, "SLT root")
		mode  = flag.String("mode", "accounted", "slt/spanner execution: accounted (ledger formulas) | measured (genuine engine message passing)")
		clust = flag.String("cluster", "en17", "spanner per-bucket algorithm: en17 | greedy | baswana (measured mode implies baswana)")
		work  = flag.Int("workers", 0, "engine worker pool for measured runs (0 = GOMAXPROCS)")
		fspec = flag.String("faults", "", "fault spec for measured runs, e.g. drop=0.01,crash=5@10 (docs/ARCHITECTURE.md)")
		retry = flag.Int("retries", 0, "per-stage validator retry budget for -faults runs (0 = default)")
		seed  = flag.Int64("seed", 1, "random seed")
		nover = flag.Bool("noverify", false, "skip exact verification (large graphs)")
		load  = flag.String("load", "", "load the graph from this file instead of generating")
		save  = flag.String("save", "", "save the generated graph to this file")
	)
	flag.Parse()

	// Fail fast on mode misuse: only the SLT and the spanner support
	// measured execution, matching the grid format's validation.
	switch *mode {
	case "accounted":
	case "measured":
		if *obj != "slt" && *obj != "spanner" {
			return fmt.Errorf("-mode measured is supported only for -obj slt and -obj spanner (got %q)", *obj)
		}
	default:
		return fmt.Errorf("unknown -mode %q (accounted|measured)", *mode)
	}
	switch *clust {
	case "en17", "greedy", "baswana":
	default:
		return fmt.Errorf("unknown -cluster %q (en17|greedy|baswana)", *clust)
	}
	// Mirror the grid format's validation: -cluster applies only to the
	// spanner, and a measured spanner always runs the baswana bucket
	// clustering — an explicitly different -cluster is a contradiction,
	// not something to override silently.
	clusterSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "cluster" {
			clusterSet = true
		}
	})
	if clusterSet && *obj != "spanner" {
		return fmt.Errorf("-cluster applies only to -obj spanner (got %q)", *obj)
	}
	if *mode == "measured" && clusterSet && *clust != "baswana" {
		return fmt.Errorf("-mode measured runs the baswana bucket clustering (got -cluster %q)", *clust)
	}
	if *fspec != "" && *mode != "measured" {
		return fmt.Errorf("-faults requires -mode measured (the accounted path exchanges no messages)")
	}
	if *retry != 0 && *fspec == "" {
		return fmt.Errorf("-retries requires -faults (fault-free stages do not retry)")
	}

	var g *lightnet.Graph
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			return ferr
		}
		g, err = lightnet.ReadGraph(f)
		f.Close()
	} else {
		g, err = makeGraph(*kind, *n, *seed)
	}
	if err != nil {
		return err
	}
	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			return ferr
		}
		if err := lightnet.WriteGraph(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("graph %s: n=%d m=%d\n", *kind, g.N(), g.M())

	switch *obj {
	case "spanner":
		spOpts := []lightnet.Option{lightnet.WithSeed(*seed)}
		switch *clust {
		case "greedy":
			spOpts = append(spOpts, lightnet.WithBucketAlgo(lightnet.BucketGreedy))
		case "baswana":
			spOpts = append(spOpts, lightnet.WithBucketAlgo(lightnet.BucketBaswana))
		}
		if *mode == "measured" {
			spOpts = append(spOpts, lightnet.WithMeasured(), lightnet.WithWorkers(*work))
		}
		if *fspec != "" {
			spOpts = append(spOpts, lightnet.WithFaultSpec(*fspec), lightnet.WithStageRetries(*retry))
		}
		res, err := lightnet.BuildLightSpanner(g, *k, *eps, spOpts...)
		if err != nil {
			return err
		}
		fmt.Printf("spanner: edges=%d lightness=%.2f rounds=%d messages=%d mode=%s\n",
			len(res.Edges), res.Lightness, res.Cost.Rounds, res.Cost.Messages, *mode)
		if res.Cost.Measured {
			printBreakdown(res.Cost)
		}
		printFaults(res.Faults)
		if !*nover {
			if res.Faults != nil && res.Faults.Survivors < g.N() {
				fmt.Printf("degraded to %d/%d survivors: skipping full-graph verification\n",
					res.Faults.Survivors, g.N())
			} else {
				maxS, meanS, err := lightnet.VerifySpanner(g, res)
				if err != nil {
					return err
				}
				fmt.Printf("verified: stretch max=%.3f mean=%.3f (bound %.3f)\n",
					maxS, meanS, float64(2**k-1)*(1+*eps))
			}
		}
	case "slt":
		sltOpts := []lightnet.Option{lightnet.WithSeed(*seed)}
		if *mode == "measured" {
			sltOpts = append(sltOpts, lightnet.WithMeasured(), lightnet.WithWorkers(*work))
		}
		if *fspec != "" {
			sltOpts = append(sltOpts, lightnet.WithFaultSpec(*fspec), lightnet.WithStageRetries(*retry))
		}
		res, err := lightnet.BuildSLT(g, lightnet.Vertex(*root), *eps, sltOpts...)
		if err != nil {
			return err
		}
		fmt.Printf("slt: lightness=%.3f rounds=%d messages=%d mode=%s\n",
			res.Lightness, res.Cost.Rounds, res.Cost.Messages, *mode)
		printBreakdown(res.Cost)
		printFaults(res.Faults)
		if !*nover {
			if res.Faults != nil && res.Faults.Survivors < g.N() {
				fmt.Printf("degraded to %d/%d survivors: skipping full-graph verification\n",
					res.Faults.Survivors, g.N())
			} else {
				light, stretch, err := lightnet.VerifySLT(g, res)
				if err != nil {
					return err
				}
				fmt.Printf("verified: lightness=%.3f rootStretch=%.3f\n", light, stretch)
			}
		}
	case "sltinv":
		res, err := lightnet.BuildSLTInverse(g, lightnet.Vertex(*root), *gamma, lightnet.WithSeed(*seed))
		if err != nil {
			return err
		}
		light, stretch, err := lightnet.VerifySLT(g, res)
		if err != nil {
			return err
		}
		fmt.Printf("slt-inverse: lightness=%.4f (≤1+γ=%.4f) rootStretch=%.2f\n",
			light, 1+*gamma, stretch)
	case "net":
		s := *scale
		if s == 0 {
			s = g.WeightedDiameterApprox() / 6
		}
		res, err := lightnet.BuildNet(g, s, *delta, lightnet.WithSeed(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("net: |N|=%d covering=%.2f separation=%.2f iterations=%d rounds=%d\n",
			len(res.Points), res.Alpha, res.Beta, res.Iterations, res.Cost.Rounds)
		if !*nover {
			if err := lightnet.VerifyNet(g, res); err != nil {
				return err
			}
			fmt.Println("verified: covering and separation hold")
		}
	case "doubling":
		res, err := lightnet.BuildDoublingSpanner(g, *eps, lightnet.WithSeed(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("doubling spanner: edges=%d lightness=%.2f rounds=%d\n",
			len(res.Edges), res.Lightness, res.Cost.Rounds)
		if !*nover {
			maxS, _, err := lightnet.VerifySpanner(g, res)
			if err != nil {
				return err
			}
			fmt.Printf("verified: stretch=%.3f\n", maxS)
		}
	case "psi":
		psi, mstW, err := lightnet.EstimateMSTWeight(g, lightnet.WithSeed(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("psi: Ψ=%.0f L=%.0f ratio=%.2f (bound O(α·log n)≈%.0f)\n",
			psi, mstW, psi/mstW, 2.25*4*math.Log2(float64(g.N())))
	case "mst":
		edges, w, err := lightnet.MST(g)
		if err != nil {
			return err
		}
		fmt.Printf("mst: edges=%d weight=%.1f\n", len(edges), w)
	case "engine":
		return runEngineDemos(g, *seed)
	default:
		return fmt.Errorf("unknown object %q", *obj)
	}
	return nil
}

// runEngineDemos executes the genuine message-passing programs on the
// graph and prints their measured CONGEST costs.
func runEngineDemos(g *lightnet.Graph, seed int64) error {
	fmt.Printf("%-22s %8s %10s %8s\n", "program", "rounds", "messages", "phases")
	if _, _, s, err := congest.RunBFS(g, 0, seed); err == nil {
		fmt.Printf("%-22s %8d %10d %8d\n", "bfs-tree", s.Rounds, s.Messages, s.Phases)
	} else {
		return err
	}
	if _, s, err := congest.RunFloodMin(g, seed); err == nil {
		fmt.Printf("%-22s %8d %10d %8d\n", "leader-election", s.Rounds, s.Messages, s.Phases)
	} else {
		return err
	}
	if _, s, err := congest.RunBoruvka(g, 0, seed); err == nil {
		fmt.Printf("%-22s %8d %10d %8d\n", "boruvka-mst", s.Rounds, s.Messages, s.Phases)
	} else {
		return err
	}
	if _, s, err := congest.RunLubyMIS(g, seed); err == nil {
		fmt.Printf("%-22s %8d %10d %8d\n", "luby-mis", s.Rounds, s.Messages, s.Phases)
	} else {
		return err
	}
	if _, s, err := congest.RunRulingSet(g, 3, seed); err == nil {
		fmt.Printf("%-22s %8d %10d %8d\n", "ruling-set(k=3)", s.Rounds, s.Messages, s.Phases)
	} else {
		return err
	}
	if _, s, err := congest.RunEN17Spanner(g, 2, seed); err == nil {
		fmt.Printf("%-22s %8d %10d %8d\n", "en17-spanner(k=2)", s.Rounds, s.Messages, s.Phases)
	} else {
		return err
	}
	if _, _, s, err := congest.RunNearestSource(g, []lightnet.Vertex{0}, g.N(), seed); err == nil {
		fmt.Printf("%-22s %8d %10d %8d\n", "nearest-source-bf", s.Rounds, s.Messages, s.Phases)
	} else {
		return err
	}
	return nil
}

// printBreakdown dumps a cost's per-stage breakdown one line deep:
// measured pipelines in stage-execution order, accounted ledgers in the
// canonical sorted-label order (Ledger.Labels) — both deterministic, so
// CLI output is reproducible byte-for-byte.
func printBreakdown(c lightnet.Cost) {
	parts := make([]string, 0, len(c.Breakdown))
	if c.Measured {
		for _, s := range c.Stages {
			parts = append(parts, fmt.Sprintf("%s:%d", s.Stage, s.Rounds))
		}
		fmt.Printf("stages: %s\n", strings.Join(parts, ";"))
		return
	}
	labels := make([]string, 0, len(c.Breakdown))
	for label := range c.Breakdown {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		parts = append(parts, fmt.Sprintf("%s:%d", label, c.Breakdown[label]))
	}
	fmt.Printf("breakdown: %s\n", strings.Join(parts, ";"))
}

// printFaults dumps a faulted measured run's diagnostics (no-op for
// fault-free runs).
func printFaults(f *lightnet.FaultReport) {
	if f == nil {
		return
	}
	fmt.Printf("faults: dropped=%d duplicated=%d delayed=%d retries=%d survivors=%d\n",
		f.Dropped, f.Duplicated, f.Delayed, f.Retries, f.Survivors)
}

// makeGraph resolves -graph through the scenario registry, so the CLI
// accepts exactly the specs the grid format does.
func makeGraph(kind string, n int, seed int64) (*lightnet.Graph, error) {
	return experiments.BuildWorkload(kind, n, seed)
}

// printScenarios lists the scenario catalog: every registered family
// with its parameters and defaults.
func printScenarios() {
	fmt.Println("scenario specs: name or name:key=val,key=val (docs/SCENARIOS.md)")
	fmt.Println()
	for _, s := range experiments.Scenarios() {
		fmt.Printf("%-10s %s\n", s.Name, s.Summary)
		for _, p := range s.Params {
			if p.Default == "" {
				fmt.Printf("    %-8s %s\n", p.Name, p.Doc)
			} else {
				fmt.Printf("    %-8s %s (default %s)\n", p.Name, p.Doc, p.Default)
			}
		}
	}
}

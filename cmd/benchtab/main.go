// Command benchtab regenerates every experiment table of EXPERIMENTS.md
// (one per table/figure/claim of the paper's evaluation — see the
// experiment index in DESIGN.md).
//
// Usage:
//
//	benchtab [-quick] [-seed N] [-only E-T1.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lightnet/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "smaller sizes (128/256) for a fast pass")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "run only the experiment with this id prefix (e.g. E-T1.1)")
	flag.Parse()

	tables, err := experiments.All(*quick, *seed)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if *only != "" && !strings.HasPrefix(t.ID, *only) {
			continue
		}
		fmt.Println(t.Format())
	}
	return nil
}

// Command benchtab regenerates every experiment table of EXPERIMENTS.md
// (one per table/figure/claim of the paper's evaluation — see the
// experiment index in DESIGN.md).
//
// Usage:
//
//	benchtab [-quick] [-seed N] [-only E-T1.1] [-csv DIR]
//
// With -csv DIR every printed table is additionally written to
// DIR/<id>.csv for machine consumption (the header row plus the data
// rows; markdown notes stay on stdout).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lightnet/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "smaller sizes (128/256) for a fast pass")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "run only the experiment with this id prefix (e.g. E-T1.1)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	tables, err := experiments.All(*quick, *seed)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if *only != "" && !strings.HasPrefix(t.ID, *only) {
			continue
		}
		fmt.Println(t.Format())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Command benchquality emits BENCH_quality.json: for every scenario in
// the registry it builds the §5 light spanner in both execution modes
// (accounted with the distributable baswana bucket clustering, and
// measured on the CONGEST engine) and certifies each against two
// independent oracles — the paper's 2k−1 stretch bound, verified by
// exact per-edge Dijkstra, and the greedy [ADD+93] baseline spanner,
// whose lightness anchors the committed ratio envelope.
//
//	go run ./cmd/benchquality -out /tmp/quality.json
//	go run ./cmd/benchdiff -kind quality -baseline BENCH_quality.json -current /tmp/quality.json
//
// Everything here is deterministic: seeds are fixed, the greedy oracle
// has no randomness, and the stretch tail uses the counter-hash pair
// sampler of metrics.PairStretchStats. Regenerate the committed baseline
// only when a change intentionally alters spanner quality:
//
//	go run ./cmd/benchquality -out BENCH_quality.json
//
// The edgelist scenario is exercised through the committed sample file
// (-edgelist), so the report covers the whole registry; run the command
// from the repository root, as CI does.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lightnet/internal/benchfmt"
	"lightnet/internal/experiments"
	"lightnet/internal/graph"
	"lightnet/internal/metrics"
	"lightnet/internal/spanner"
)

func main() {
	var (
		out      = flag.String("out", "BENCH_quality.json", "output JSON path")
		n        = flag.Int("n", 128, "vertex count per scenario (edgelist ignores it)")
		seed     = flag.Int64("seed", 1, "build and sampling seed")
		k        = flag.Int("k", 2, "spanner stretch parameter (bound 2k−1)")
		eps      = flag.Float64("eps", 0.25, "spanner ε")
		pairs    = flag.Int("pairs", 2000, "deterministic pair-sample cap for stretch_p99")
		edgelist = flag.String("edgelist", "internal/experiments/testdata/sample.edgelist",
			"edge-list file backing the edgelist scenario (relative to the repo root)")
	)
	flag.Parse()
	rep, err := buildReport(*n, *seed, *k, *eps, *pairs, *edgelist)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchquality:", err)
		os.Exit(1)
	}
	if err := benchfmt.WriteFile(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchquality:", err)
		os.Exit(1)
	}
	fmt.Printf("benchquality: %d rows (%d scenarios × 2 modes) written to %s\n",
		len(rep.Rows), len(rep.Rows)/2, *out)
}

// buildReport runs every registry scenario through both spanner modes
// and the greedy oracle.
func buildReport(n int, seed int64, k int, eps float64, pairs int, edgelistPath string) (*benchfmt.QualityReport, error) {
	rep := &benchfmt.QualityReport{K: k, Eps: eps, N: n, Seed: seed, Pairs: pairs}
	for _, sc := range experiments.Scenarios() {
		spec := sc.Name
		if sc.Name == "edgelist" {
			spec = "edgelist:path=" + edgelistPath
		}
		g, err := experiments.BuildWorkload(spec, n, seed)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec, err)
		}
		rows, err := qualityRows(spec, g, seed, k, eps, pairs)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// qualityRows builds the accounted and measured spanners on g and
// certifies both against the greedy baseline (computed once — it is
// mode-independent).
func qualityRows(spec string, g *graph.Graph, seed int64, k int, eps float64, pairs int) ([]benchfmt.QualityRow, error) {
	bound := float64(2*k - 1)
	greedyIDs, err := spanner.Greedy(g, bound)
	if err != nil {
		return nil, err
	}
	gMax, _, err := metrics.EdgeStretch(g, g.Subgraph(greedyIDs))
	if err != nil {
		return nil, fmt.Errorf("greedy stretch: %w", err)
	}
	var rows []benchfmt.QualityRow
	for _, mode := range []string{"accounted", "measured"} {
		opts := spanner.Options{Seed: seed, Cluster: spanner.ClusterBaswana}
		if mode == "measured" {
			opts = spanner.Options{Seed: seed, Mode: spanner.Measured}
		}
		res, err := spanner.BuildLight(g, k, eps, opts)
		if err != nil {
			return nil, fmt.Errorf("%s build: %w", mode, err)
		}
		built := g.Subgraph(res.Edges)
		maxS, _, err := metrics.EdgeStretch(g, built)
		if err != nil {
			return nil, fmt.Errorf("%s stretch: %w", mode, err)
		}
		stats, err := metrics.PairStretchStats(g, built, pairs, seed)
		if err != nil {
			return nil, fmt.Errorf("%s pair stretch: %w", mode, err)
		}
		greedyLight := metrics.Lightness(g, greedyIDs, res.MSTWeight)
		row := benchfmt.QualityRow{
			Scenario: displaySpec(spec), Mode: mode, N: g.N(), M: g.M(), Bound: bound,
			Edges: len(res.Edges), Lightness: res.Lightness,
			Stretch: maxS, StretchP99: stats.P99,
			GreedyEdges: len(greedyIDs), GreedyLightness: greedyLight, GreedyStretch: gMax,
		}
		if greedyLight > 0 {
			row.RatioVsGreedy = res.Lightness / greedyLight
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// displaySpec strips the machine-local edgelist path so the committed
// baseline's row key is stable across checkouts.
func displaySpec(spec string) string {
	if strings.HasPrefix(spec, "edgelist:") {
		return "edgelist"
	}
	return spec
}

// Command benchgen measures the generator layer's spatial-hash
// geometric builder against the O(n²) brute-force reference on 100k
// uniform points in [0,1]² and writes BENCH_generators.json. Both
// builders produce bit-identical graphs (verified edge by edge on
// every run, and oracle-tested in internal/graph), so each comparison
// is a pure same-work speed measurement. Two radius regimes are
// reported:
//
//   - sparse (0.3× the connectivity radius): construction is
//     scan-dominated and the point set is slightly shattered, so the
//     comparison covers both the pair scan and the component
//     reconnection — the regimes where the builders actually differ
//     (O(n + m) grid vs two O(n²) passes).
//   - dense (the connectivity radius): millions of edges, where both
//     builders share the same multi-second edge-materialization cost
//     and the end-to-end gap narrows accordingly.
//
// A final grid-only datapoint records that a million-point build is
// practical, which the quadratic builder cannot attempt (5·10¹¹
// distance evaluations). Rerun after generator changes (cmd/benchdiff
// gates CI on regressions against the committed file):
//
//	go run ./cmd/benchgen -out BENCH_generators.json
//
// The million-point build needs a few GB of memory; skip it with
// -million=false on small machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lightnet/internal/benchfmt"
	"lightnet/internal/graph"
)

// The report schema (benchfmt.GeneratorsReport) is shared with the
// cmd/benchdiff regression gate.

func main() {
	out := flag.String("out", "BENCH_generators.json", "output path")
	n := flag.Int("n", 100000, "points for the brute-vs-grid comparison")
	seed := flag.Int64("seed", 1, "point-set seed")
	million := flag.Bool("million", true, "also record the grid-only 1M-point build")
	flag.Parse()
	if err := run(*out, *n, *seed, *million); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

// compare builds the same unit-ball graph with both builders, verifies
// bit-identical output, and returns the timed comparison.
func compare(regime string, pts *graph.Points, radius float64) (benchfmt.GeneratorComparison, error) {
	n := pts.N()
	fmt.Printf("%s: n=%d radius=%.5f\n", regime, n, radius)
	gridStart := time.Now()
	gg := graph.UnitBallGraph(pts, radius)
	gridMS := float64(time.Since(gridStart).Microseconds()) / 1000
	fmt.Printf("  grid:  %8.0f ms, %d edges\n", gridMS, gg.M())
	fmt.Println("  brute: running the O(n²) reference (this is the slow part)...")
	bruteStart := time.Now()
	bg := graph.UnitBallGraphBrute(pts, radius)
	bruteMS := float64(time.Since(bruteStart).Microseconds()) / 1000
	fmt.Printf("  brute: %8.0f ms, %d edges (%.1fx)\n", bruteMS, bg.M(), bruteMS/gridMS)
	if gg.M() != bg.M() {
		return benchfmt.GeneratorComparison{}, fmt.Errorf("%s: builders disagree: %d vs %d edges", regime, gg.M(), bg.M())
	}
	for id := 0; id < gg.M(); id++ {
		if gg.Edge(graph.EdgeID(id)) != bg.Edge(graph.EdgeID(id)) {
			return benchfmt.GeneratorComparison{}, fmt.Errorf("%s: builders disagree on edge %d", regime, id)
		}
	}
	return benchfmt.GeneratorComparison{
		Regime:  regime,
		Radius:  radius,
		Edges:   gg.M(),
		BruteMS: bruteMS,
		GridMS:  gridMS,
		Speedup: bruteMS / gridMS,
	}, nil
}

func run(out string, n int, seed int64, million bool) error {
	const dim = 2
	rc := graph.ConnectivityRadius(n, dim)
	pts := graph.RandomPoints(n, dim, 1, seed)
	rep := benchfmt.GeneratorsReport{
		Workload: fmt.Sprintf("UnitBallGraph vs UnitBallGraphBrute on RandomPoints(n=%d, dim=%d, side=1, seed=%d); bit-identical outputs verified per run", n, dim, seed),
		N:        n,
		Dim:      dim,
	}
	sparse, err := compare("sparse (0.3x connectivity radius, exercises reconnection)", pts, 0.3*rc)
	if err != nil {
		return err
	}
	dense, err := compare("dense (connectivity radius)", pts, rc)
	if err != nil {
		return err
	}
	rep.Comparisons = []benchfmt.GeneratorComparison{sparse, dense}

	if million {
		const mn = 1_000_000
		// Half the connectivity radius: sparse enough to fit in memory
		// (the giant component plus stragglers), so the build also
		// exercises the grid-based component reconnection at scale.
		mr := 0.5 * graph.ConnectivityRadius(mn, dim)
		fmt.Printf("million-point feasibility: n=%d radius=%.6f...\n", mn, mr)
		mpts := graph.RandomPoints(mn, dim, 1, seed)
		mStart := time.Now()
		mg := graph.UnitBallGraph(mpts, mr)
		mMS := float64(time.Since(mStart).Microseconds()) / 1000
		fmt.Printf("  grid: %.0f ms, %d edges, connected=%v\n", mMS, mg.M(), mg.Connected())
		rep.MillionPoint = &benchfmt.MillionPoint{N: mn, Radius: mr, Edges: mg.M(), WallMS: mMS}
	}

	if err := benchfmt.WriteFile(out, rep); err != nil {
		return err
	}
	fmt.Printf("sparse speedup: %.1fx, dense speedup: %.1fx; wrote %s\n",
		sparse.Speedup, dense.Speedup, out)
	return nil
}

// Package lightnet is a Go implementation of "Distributed Construction
// of Light Networks" (Elkin, Filtser, Neiman — PODC 2020): CONGEST-model
// algorithms for light spanners of general graphs, shallow-light trees
// (SLTs), nets, and light spanners of doubling graphs, together with the
// substrates they are built from (MST fragment decompositions, Euler
// tours, hopsets, LE lists, approximate shortest-path trees) and a
// CONGEST simulator that accounts rounds and messages.
//
// The four headline constructions (Table 1 of the paper):
//
//	BuildLightSpanner   (2k−1)(1+ε) stretch, O(k·n^{1/k}) lightness   §5
//	BuildSLT            1+ε root stretch, 1+O(1/ε) lightness          §4
//	BuildSLTInverse     1+γ lightness, O(1/γ) root stretch            §4.4
//	BuildNet            ((1+δ)Δ)-covering, (Δ/(1+δ))-separated net    §6
//	BuildDoublingSpanner 1+ε stretch, ε^{-O(ddim)}·log n lightness    §7
//
// Every builder returns the distributed cost (rounds, messages) of the
// construction under the paper's accounting; see internal/congest for
// the model. Deterministic given the seed.
package lightnet

import (
	"fmt"

	"lightnet/internal/congest"
	"lightnet/internal/doubling"
	"lightnet/internal/graph"
	"lightnet/internal/lowerbound"
	"lightnet/internal/metrics"
	"lightnet/internal/mst"
	"lightnet/internal/nets"
	"lightnet/internal/slt"
	"lightnet/internal/spanner"
	"lightnet/internal/sssp"
)

// Re-exported core types. Graph is the weighted-graph container; see
// NewGraph and the generator functions in generators.go.
type (
	// Graph is an undirected weighted graph.
	Graph = graph.Graph
	// Vertex identifies a vertex (dense in [0, N)).
	Vertex = graph.Vertex
	// EdgeID identifies an undirected edge (dense in [0, M)).
	EdgeID = graph.EdgeID
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
)

// NoEdge is the sentinel "no edge" id (tree roots, absent parents).
const NoEdge = graph.NoEdge

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// Cost is the distributed cost of a construction: either the paper's
// CONGEST accounting (Measured == false) or rounds and messages counted
// from actual engine message passing (Measured == true).
type Cost struct {
	// Rounds is the total number of synchronous rounds.
	Rounds int64
	// Messages is the total number of O(log n)-bit messages.
	Messages int64
	// Breakdown maps pipeline-stage labels to their round counts. Map
	// order is random; iterate sorted keys (or Stages) when printing.
	Breakdown map[string]int64
	// Stages is the ordered per-stage breakdown of a measured pipeline
	// run (nil for accounted constructions).
	Stages []StageCost
	// Measured reports whether Rounds/Messages were measured from real
	// message exchanges rather than charged by the paper's formulas.
	Measured bool
}

// StageCost is the measured cost of one pipeline stage.
type StageCost struct {
	Stage    string
	Rounds   int64
	Messages int64
}

func costOf(l *congest.Ledger) Cost {
	return Cost{Rounds: l.Rounds(), Messages: l.Messages(), Breakdown: l.ByLabel()}
}

func stageCosts(stages []congest.StageStats) []StageCost {
	if len(stages) == 0 {
		return nil
	}
	out := make([]StageCost, len(stages))
	for i, s := range stages {
		out[i] = StageCost{Stage: s.Name, Rounds: int64(s.Stats.Rounds), Messages: s.Stats.Messages}
	}
	return out
}

// options is the shared option state.
type options struct {
	seed      int64
	hopDiam   int
	sptMode   sssp.Mode
	measured  bool
	workers   int
	buckets   BucketAlgo
	faultSpec string
	retries   int
}

// Option configures a builder.
type Option func(*options)

// WithSeed fixes the random seed (default 1). Same seed, same output.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithHopDiameter supplies the graph's hop-diameter D used in round
// accounting; when omitted a 2-approximation is computed.
func WithHopDiameter(d int) Option { return func(o *options) { o.hopDiam = d } }

// WithExactSPT makes builders use exact shortest-path trees instead of
// the default genuinely-(1+ε)-approximate ones.
func WithExactSPT() Option { return func(o *options) { o.sptMode = sssp.ModeExact } }

// WithMeasured runs the construction as genuine per-vertex message
// passing on the CONGEST engine instead of charging the paper's round
// formulas: Cost then reports measured rounds/messages with a per-stage
// breakdown, and the result is bit-identical to the accounted builder's
// for the same seed (for BuildLightSpanner, the accounted twin is the
// distributable per-bucket Baswana-Sen clustering the pipeline
// executes). Currently supported by BuildSLT and BuildLightSpanner.
func WithMeasured() Option { return func(o *options) { o.measured = true } }

// WithWorkers sizes the engine worker pool for measured-mode runs
// (0 = GOMAXPROCS). Results are identical for every worker count.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithFaultSpec injects a deterministic fault plan into a WithMeasured
// run, given in the compact spec syntax, e.g.
//
//	drop=0.01,dup=0.005,delay=0.02,maxdelay=3,seed=7,crash=5@10,part=0.5@30-80
//
// The engine then drops/duplicates/delays messages and crashes vertices
// per the plan (fault streams are a pure hash of the plan — identical
// at every worker count), every pipeline stage is validated against a
// sequential oracle and retried under exponential round budgets, and
// crash-stop faults degrade the construction to the root's surviving
// component. The result carries a FaultReport. Requires WithMeasured;
// currently supported by BuildSLT and BuildLightSpanner.
func WithFaultSpec(spec string) Option { return func(o *options) { o.faultSpec = spec } }

// WithStageRetries raises the per-stage validator retry budget of a
// WithFaultSpec run (each retry re-runs the stage under an
// exponentially larger round budget and fresh fault draws). The
// default budget copes with light fault rates; raise it when the
// rate × message volume makes fault-free attempts rare. Requires
// WithFaultSpec.
func WithStageRetries(n int) Option { return func(o *options) { o.retries = n } }

// FaultReport summarizes a faulted measured run: the injected message
// faults, the extra stage attempts the validators forced, and the size
// of the root's surviving component under crash-stop faults (= the
// vertex count when nobody is permanently down).
type FaultReport struct {
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Retries    int
	Survivors  int
}

// faultPlan resolves the option's fault spec (nil when unset).
func (o *options) faultPlan() (*congest.FaultPlan, error) {
	if o.faultSpec == "" {
		if o.retries != 0 {
			return nil, fmt.Errorf("lightnet: WithStageRetries requires WithFaultSpec (fault-free stages do not retry)")
		}
		return nil, nil
	}
	if !o.measured {
		return nil, fmt.Errorf("lightnet: WithFaultSpec requires WithMeasured (the accounted path exchanges no messages)")
	}
	return congest.ParseFaultSpec(o.faultSpec)
}

// BucketAlgo selects BuildLightSpanner's per-bucket cluster-spanner
// algorithm.
type BucketAlgo int

// Per-bucket algorithm choices.
const (
	// BucketEN17 (default) simulates the [EN17b] randomized spanner on
	// the tour-based cluster graph — the paper's choice.
	BucketEN17 BucketAlgo = iota
	// BucketGreedy runs the centralized greedy spanner per bucket (the
	// sequential-construction ablation).
	BucketGreedy
	// BucketBaswana runs the [BS07] clustering directly on each bucket's
	// edges — the O(k)-round distributable choice the measured pipeline
	// executes; accounted runs with it are bit-comparable to measured
	// ones.
	BucketBaswana
)

// WithBucketAlgo selects the spanner's per-bucket algorithm (default
// BucketEN17). A WithMeasured spanner always executes the BucketBaswana
// clustering; combine it with an accounted BucketBaswana run to compare
// identical outputs.
func WithBucketAlgo(a BucketAlgo) Option { return func(o *options) { o.buckets = a } }

func buildOptions(g *Graph, opts []Option) options {
	o := options{seed: 1, sptMode: sssp.ModePerturbed}
	for _, fn := range opts {
		fn(&o)
	}
	if o.hopDiam == 0 && g.N() > 0 {
		o.hopDiam = g.HopDiameterApprox()
	}
	return o
}

// SpannerResult is a light spanner plus certification data and cost.
type SpannerResult struct {
	// Edges of the spanner, including the MST.
	Edges []EdgeID
	// Weight, MSTWeight and Lightness certify the weight bound.
	Weight    float64
	MSTWeight float64
	Lightness float64
	// Faults reports a faulted measured run's diagnostics (nil when no
	// fault plan was active; see WithFaultSpec). When Survivors is below
	// the vertex count the spanner covers the surviving component only.
	Faults *FaultReport
	Cost   Cost
}

// BuildLightSpanner builds the §5 spanner: stretch (2k−1)(1+ε),
// O(k·n^{1+1/k}) edges, lightness O(k·n^{1/k}), in
// Õ(n^{1/2+1/(4k+2)} + D) rounds. With WithMeasured the whole
// construction — Borůvka MST, MST-weight fixing, and every weight
// bucket's Baswana-Sen clustering — executes as per-vertex message
// passing on the CONGEST engine and the cost is measured rather than
// charged.
func BuildLightSpanner(g *Graph, k int, eps float64, opts ...Option) (*SpannerResult, error) {
	o := buildOptions(g, opts)
	ledger := congest.NewLedger()
	sopts := spanner.Options{Seed: o.seed, Ledger: ledger, HopDiam: o.hopDiam}
	switch o.buckets {
	case BucketGreedy:
		sopts.Cluster = spanner.ClusterGreedy
	case BucketBaswana:
		sopts.Cluster = spanner.ClusterBaswana
	}
	if o.measured {
		sopts.Mode = spanner.Measured
		sopts.Workers = o.workers
	}
	plan, err := o.faultPlan()
	if err != nil {
		return nil, err
	}
	sopts.Faults = plan
	sopts.StageRetries = o.retries
	res, err := spanner.BuildLight(g, k, eps, sopts)
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	cost := costOf(ledger)
	cost.Stages = stageCosts(res.Stages)
	cost.Measured = res.Stages != nil
	out := &SpannerResult{
		Edges:     res.Edges,
		Weight:    res.Weight,
		MSTWeight: res.MSTWeight,
		Lightness: res.Lightness,
		Cost:      cost,
	}
	if res.Survivors > 0 { // set only when a fault plan was active
		out.Faults = &FaultReport{
			Dropped: res.Faults.Dropped, Duplicated: res.Faults.Duplicated,
			Delayed: res.Faults.Delayed, Retries: res.PipelineRetries,
			Survivors: res.Survivors,
		}
	}
	return out, nil
}

// VerifySpanner measures the exact maximum and mean stretch of a
// spanner result over all graph edges (equals the all-pairs stretch).
func VerifySpanner(g *Graph, res *SpannerResult) (maxStretch, meanStretch float64, err error) {
	return metrics.EdgeStretch(g, g.Subgraph(res.Edges))
}

// SLTResult is a shallow-light tree plus certification data and cost.
type SLTResult struct {
	Root Vertex
	// TreeEdges are the n−1 tree edges; Parent[v] the parent edge
	// (NoEdge at the root); Dist[v] the tree distance from the root.
	TreeEdges []EdgeID
	Parent    []EdgeID
	Dist      []float64
	// Lightness = tree weight / MST weight.
	Lightness float64
	MSTWeight float64
	// Faults reports a faulted measured run's diagnostics (nil when no
	// fault plan was active; see WithFaultSpec). When Survivors is below
	// the vertex count the tree spans the surviving component only.
	Faults *FaultReport
	Cost   Cost
}

// BuildSLT builds the §4 SLT: root stretch 1+O(ε), lightness 1+O(1/ε),
// in Õ(√n + D)·poly(1/ε) rounds. With WithMeasured the whole pipeline
// executes as per-vertex message passing on the CONGEST engine and the
// cost is measured rather than charged (same tree, bit for bit).
func BuildSLT(g *Graph, root Vertex, eps float64, opts ...Option) (*SLTResult, error) {
	o := buildOptions(g, opts)
	ledger := congest.NewLedger()
	mode := slt.Accounted
	if o.measured {
		mode = slt.Measured
	}
	plan, err := o.faultPlan()
	if err != nil {
		return nil, err
	}
	res, err := slt.Build(g, root, eps, slt.Options{
		Seed: o.seed, Ledger: ledger, HopDiam: o.hopDiam, SPTMode: o.sptMode,
		Mode: mode, Workers: o.workers, Faults: plan, StageRetries: o.retries,
	})
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	return sltResult(root, res, ledger), nil
}

// BuildSLTInverse builds the inverse-tradeoff SLT of §4.4 via the
// [BFN16] reduction: lightness 1+γ, root stretch O(1/γ).
func BuildSLTInverse(g *Graph, root Vertex, gamma float64, opts ...Option) (*SLTResult, error) {
	o := buildOptions(g, opts)
	ledger := congest.NewLedger()
	res, err := slt.BuildInverse(g, root, gamma, slt.Options{
		Seed: o.seed, Ledger: ledger, HopDiam: o.hopDiam, SPTMode: o.sptMode,
	})
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	return sltResult(root, res, ledger), nil
}

func sltResult(root Vertex, res *slt.Result, ledger *congest.Ledger) *SLTResult {
	cost := costOf(ledger)
	cost.Stages = stageCosts(res.Stages)
	cost.Measured = res.Stages != nil
	out := &SLTResult{
		Root:      root,
		TreeEdges: res.TreeEdges,
		Parent:    res.Parent,
		Dist:      res.Dist,
		Lightness: res.Lightness,
		MSTWeight: res.MSTWeight,
		Cost:      cost,
	}
	if res.Survivors > 0 { // set only when a fault plan was active
		out.Faults = &FaultReport{
			Dropped: res.Faults.Dropped, Duplicated: res.Faults.Duplicated,
			Delayed: res.Faults.Delayed, Retries: res.PipelineRetries,
			Survivors: res.Survivors,
		}
	}
	return out
}

// VerifySLT certifies an SLT: returns the exact lightness and maximum
// root stretch.
func VerifySLT(g *Graph, res *SLTResult) (lightness, maxRootStretch float64, err error) {
	inner := &slt.Result{
		Source:    res.Root,
		Parent:    res.Parent,
		Dist:      res.Dist,
		TreeEdges: res.TreeEdges,
		MSTWeight: res.MSTWeight,
		Lightness: res.Lightness,
	}
	return slt.Verify(g, inner)
}

// NetResult is a constructed net plus certification data and cost.
type NetResult struct {
	// Points are the net vertices.
	Points []Vertex
	// Alpha is the covering radius (1+δ)·Δ; Beta the separation
	// Δ/(1+δ).
	Alpha, Beta float64
	// Iterations the §6 algorithm used (O(log n) w.h.p.).
	Iterations int
	Cost       Cost
}

// BuildNet builds the §6 ((1+δ)Δ, Δ/(1+δ))-net.
func BuildNet(g *Graph, scale, delta float64, opts ...Option) (*NetResult, error) {
	o := buildOptions(g, opts)
	ledger := congest.NewLedger()
	res, err := nets.Build(g, scale, delta, nets.Options{
		Seed: o.seed, Ledger: ledger, HopDiam: o.hopDiam,
	})
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	return &NetResult{
		Points:     res.Points,
		Alpha:      res.Alpha,
		Beta:       res.Beta,
		Iterations: res.Iterations,
		Cost:       costOf(ledger),
	}, nil
}

// VerifyNet certifies covering and separation with exact shortest
// paths.
func VerifyNet(g *Graph, res *NetResult) error {
	return nets.Verify(g, res.Points, res.Alpha, res.Beta)
}

// BuildDoublingSpanner builds the §7 (1+O(ε))-spanner for doubling
// graphs, lightness ε^{-O(ddim)}·log n.
func BuildDoublingSpanner(g *Graph, eps float64, opts ...Option) (*SpannerResult, error) {
	o := buildOptions(g, opts)
	ledger := congest.NewLedger()
	res, err := doubling.Build(g, eps, doubling.Options{
		Seed: o.seed, Ledger: ledger, HopDiam: o.hopDiam,
	})
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	return &SpannerResult{
		Edges:     res.Edges,
		Weight:    res.Weight,
		MSTWeight: res.MSTWeight,
		Lightness: res.Lightness,
		Cost:      costOf(ledger),
	}, nil
}

// MST returns the minimum spanning tree edges and weight.
func MST(g *Graph) ([]EdgeID, float64, error) {
	edges, w, err := mst.Kruskal(g)
	if err != nil {
		return nil, 0, fmt.Errorf("lightnet: %w", err)
	}
	return edges, w, nil
}

// EstimateMSTWeight runs the §8 (Theorem 7) reduction: an MST-weight
// estimate Ψ from net cardinalities with L ≤ Ψ ≤ O(α·log n)·L.
func EstimateMSTWeight(g *Graph, opts ...Option) (psi, mstWeight float64, err error) {
	o := buildOptions(g, opts)
	res, err := lowerbound.EstimatePsi(g, lowerbound.Options{
		Seed: o.seed, HopDiam: o.hopDiam,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("lightnet: %w", err)
	}
	return res.Psi, res.MSTWeight, nil
}

// BaselineBaswanaSen builds the [BS07] (2k−1)-spanner — sparse but with
// unbounded lightness; the comparison point of §1.1.
func BaselineBaswanaSen(g *Graph, k int, opts ...Option) (*SpannerResult, error) {
	o := buildOptions(g, opts)
	ledger := congest.NewLedger()
	edges, err := spanner.BaswanaSen(g, k, o.seed, ledger, o.hopDiam)
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	_, mstW, err := mst.Kruskal(g)
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	w := g.WeightOf(edges)
	return &SpannerResult{
		Edges: edges, Weight: w, MSTWeight: mstW,
		Lightness: w / mstW, Cost: costOf(ledger),
	}, nil
}

// BaselineGreedySpanner builds the greedy t-spanner [ADD+93]
// (centralized; the quality yardstick).
func BaselineGreedySpanner(g *Graph, t float64) (*SpannerResult, error) {
	edges, err := spanner.Greedy(g, t)
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	_, mstW, err := mst.Kruskal(g)
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	w := g.WeightOf(edges)
	return &SpannerResult{
		Edges: edges, Weight: w, MSTWeight: mstW, Lightness: w / mstW,
	}, nil
}

// BaselineKRYSLT builds the [KRY95] sequential SLT baseline.
func BaselineKRYSLT(g *Graph, root Vertex, eps float64) (*SLTResult, error) {
	res, err := slt.KRY(g, root, eps)
	if err != nil {
		return nil, fmt.Errorf("lightnet: %w", err)
	}
	return sltResult(root, res, congest.NewLedger()), nil
}

// BaselineGreedyNet builds the sequential greedy (β, β)-net.
func BaselineGreedyNet(g *Graph, beta float64) *NetResult {
	res := nets.Greedy(g, beta)
	return &NetResult{
		Points: res.Points, Alpha: res.Alpha, Beta: res.Beta, Iterations: 1,
	}
}
